"""Unit tests for domain-name handling."""

import pytest

from repro.dnscore.names import (
    BadEscape,
    EmptyLabel,
    LabelTooLong,
    Name,
    NameTooLong,
    apex_of,
    www_of,
)


class TestParsing:
    def test_simple_name(self):
        name = Name.from_text("www.example.com")
        assert name.labels == (b"www", b"example", b"com", b"")

    def test_trailing_dot_optional(self):
        assert Name.from_text("a.com") == Name.from_text("a.com.")

    def test_root(self):
        assert Name.from_text(".").labels == (b"",)
        assert Name.from_text("").labels == (b"",)
        assert Name.root() == Name.from_text(".")

    def test_case_preserved_in_text(self):
        assert Name.from_text("ExAmple.COM").to_text() == "ExAmple.COM."

    def test_case_insensitive_equality(self):
        assert Name.from_text("EXAMPLE.com") == Name.from_text("example.COM")

    def test_case_insensitive_hash(self):
        assert hash(Name.from_text("A.com")) == hash(Name.from_text("a.COM"))

    def test_escaped_dot(self):
        name = Name.from_text("a\\.b.com")
        assert name.labels[0] == b"a.b"

    def test_decimal_escape(self):
        name = Name.from_text("a\\065b.com")
        assert name.labels[0] == b"aAb"

    def test_decimal_escape_out_of_range(self):
        with pytest.raises(BadEscape):
            Name.from_text("a\\999.com")

    def test_trailing_backslash_rejected(self):
        with pytest.raises(BadEscape):
            Name.from_text("abc\\")

    def test_empty_label_rejected(self):
        with pytest.raises(EmptyLabel):
            Name.from_text("a..com")

    def test_label_too_long(self):
        with pytest.raises(LabelTooLong):
            Name.from_text("a" * 64 + ".com")

    def test_name_too_long(self):
        label = "a" * 60
        with pytest.raises(NameTooLong):
            Name.from_text(".".join([label] * 5))

    def test_63_octet_label_allowed(self):
        name = Name.from_text("a" * 63 + ".com")
        assert len(name.labels[0]) == 63


class TestPickling:
    """Regression: Name used to pickle its cached hash, which bakes in
    the writing interpreter's str-hash seed — a world snapshot loaded by
    a *resumed* collection (a fresh interpreter, new seed) then missed
    every dict lookup keyed by freshly constructed Names."""

    def test_hash_and_key_caches_never_cross_a_pickle_boundary(self):
        import pickle

        name = Name.from_text("Example.COM.")
        hash(name)  # populate both caches
        assert name._hash is not None and name._key_cache is not None
        clone = pickle.loads(pickle.dumps(name))
        assert clone._hash is None and clone._key_cache is None
        assert clone == name and hash(clone) == hash(name)
        assert clone.to_text() == name.to_text()  # case preserved

    def test_unpickled_name_hits_fresh_dicts(self):
        import pickle

        table = {Name.from_text("a.example."): 1}
        stale = pickle.loads(pickle.dumps(Name.from_text("a.example.")))
        assert table[stale] == 1

    def test_empty_relative_name_round_trips(self):
        # A falsy __getstate__ would make pickle skip __setstate__
        # entirely, leaving the unpickled object with no slots assigned.
        import pickle

        empty = Name(())
        clone = pickle.loads(pickle.dumps(empty))
        assert clone == empty and clone.labels == ()


class TestTextRendering:
    def test_round_trip(self):
        for text in ("example.com.", "a.b.c.d.e.", "xn--espaa-rta.es."):
            assert Name.from_text(text).to_text() == text

    def test_escaping_special_bytes(self):
        name = Name((b"a.b", b"com", b""))
        assert name.to_text() == "a\\.b.com."
        assert Name.from_text(name.to_text()) == name

    def test_non_printable_escaped(self):
        name = Name((b"\x07bell", b"com", b""))
        assert "\\007" in name.to_text()
        assert Name.from_text(name.to_text()) == name

    def test_omit_final_dot(self):
        assert Name.from_text("a.com.").to_text(omit_final_dot=True) == "a.com"


class TestStructure:
    def test_parent(self):
        assert Name.from_text("www.a.com.").parent() == Name.from_text("a.com.")

    def test_parent_of_root_raises(self):
        with pytest.raises(Exception):
            Name.root().parent()

    def test_is_subdomain_of_self(self):
        name = Name.from_text("a.com.")
        assert name.is_subdomain_of(name)

    def test_is_subdomain_of_parent(self):
        assert Name.from_text("www.a.com.").is_subdomain_of(Name.from_text("a.com."))

    def test_is_subdomain_of_root(self):
        assert Name.from_text("a.com.").is_subdomain_of(Name.root())

    def test_not_subdomain_of_sibling(self):
        assert not Name.from_text("a.com.").is_subdomain_of(Name.from_text("b.com."))

    def test_not_subdomain_by_suffix_string(self):
        # "xa.com" must not count as a subdomain of "a.com".
        assert not Name.from_text("xa.com.").is_subdomain_of(Name.from_text("a.com."))

    def test_prepend(self):
        assert Name.from_text("a.com.").prepend("www") == Name.from_text("www.a.com.")

    def test_split_depth(self):
        assert Name.from_text("a.b.com.").split_depth() == 3
        assert Name.root().split_depth() == 0

    def test_canonical_ordering(self):
        # RFC 4034 6.1 ordering is right-to-left by label.
        a = Name.from_text("a.example.")
        b = Name.from_text("z.a.example.")
        c = Name.from_text("z.example.")
        assert a < b < c


class TestWire:
    def test_to_wire(self):
        assert Name.from_text("a.bc.").to_wire() == b"\x01a\x02bc\x00"

    def test_root_wire(self):
        assert Name.root().to_wire() == b"\x00"


class TestWwwHelpers:
    def test_www_of(self):
        assert www_of(Name.from_text("a.com.")) == Name.from_text("www.a.com.")

    def test_www_of_idempotent(self):
        www = Name.from_text("www.a.com.")
        assert www_of(www) == www

    def test_apex_of(self):
        assert apex_of(Name.from_text("www.a.com.")) == Name.from_text("a.com.")

    def test_apex_of_plain(self):
        name = Name.from_text("a.com.")
        assert apex_of(name) == name
