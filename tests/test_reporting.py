"""Tests for output rendering."""

import datetime

from repro.reporting import (
    render_comparison,
    render_histogram,
    render_series,
    render_table,
)


class TestRenderTable:
    def test_basic(self):
        text = render_table("T", ["a", "bb"], [[1, 2.5], ["x", "y"]])
        assert "T" in text
        assert "| a" in text
        assert "2.50" in text

    def test_note(self):
        text = render_table("T", ["a"], [[1]], note="scaled 1/50")
        assert "scaled 1/50" in text

    def test_column_alignment(self):
        text = render_table("T", ["col"], [["longvalue"]])
        lines = text.splitlines()
        widths = {len(line) for line in lines[1:] if line.startswith(("|", "+"))}
        assert len(widths) == 1


class TestRenderSeries:
    def test_bars_scale(self):
        points = [
            (datetime.date(2023, 5, 8), 10.0),
            (datetime.date(2023, 5, 9), 20.0),
        ]
        text = render_series("S", points, width=10)
        lines = text.splitlines()
        assert lines[1].count("#") < lines[2].count("#")

    def test_empty(self):
        assert "no data" in render_series("S", [])

    def test_flat_series(self):
        points = [(datetime.date(2023, 5, 8), 5.0), (datetime.date(2023, 5, 9), 5.0)]
        text = render_series("S", points)
        assert "5.00" in text


class TestRenderComparison:
    def test_columns(self):
        text = render_comparison("C", [("adoption", "20-27%", 23.5)])
        assert "paper" in text and "measured" in text and "23.50" in text


class TestRenderHistogram:
    def test_bars(self):
        text = render_histogram("H", [("1h", 10), ("2h", 5)])
        assert text.splitlines()[1].count("#") > text.splitlines()[2].count("#")

    def test_empty(self):
        assert "empty" in render_histogram("H", [])
