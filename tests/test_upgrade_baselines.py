"""Tests for the HTTP→HTTPS upgrade baselines (HSTS, preload, Alt-Svc,
HTTPS RR) the paper's introduction compares."""

import pytest

from repro.browser.upgrade_baselines import (
    ALL_MECHANISMS,
    AltSvcCache,
    HstsPolicy,
    HstsStore,
    MECH_ALT_SVC,
    MECH_HSTS,
    MECH_HSTS_PRELOAD,
    MECH_HTTPS_RR,
    MECH_REDIRECT,
    SiteConfig,
    UpgradeSimulator,
    compare_mechanisms,
)


class TestHstsStore:
    def test_dynamic_entry(self):
        store = HstsStore()
        store.note_header("a.com", HstsPolicy(3600), now=0)
        assert store.must_use_https("a.com", now=100)

    def test_expiry(self):
        store = HstsStore()
        store.note_header("a.com", HstsPolicy(3600), now=0)
        assert not store.must_use_https("a.com", now=4000)

    def test_max_age_zero_deletes(self):
        store = HstsStore()
        store.note_header("a.com", HstsPolicy(3600), now=0)
        store.note_header("a.com", HstsPolicy(0), now=10)
        assert not store.must_use_https("a.com", now=20)

    def test_include_subdomains(self):
        store = HstsStore()
        store.note_header("a.com", HstsPolicy(3600, include_subdomains=True), now=0)
        assert store.must_use_https("www.a.com", now=10)
        store2 = HstsStore()
        store2.note_header("a.com", HstsPolicy(3600, include_subdomains=False), now=0)
        assert not store2.must_use_https("www.a.com", now=10)

    def test_preload(self):
        store = HstsStore(preload=["bank.example"])
        assert store.must_use_https("bank.example", now=0)


class TestAltSvcCache:
    def test_cache_and_expiry(self):
        cache = AltSvcCache()
        cache.note_header("a.com", "h3", 443, max_age=100, now=0)
        assert cache.lookup("a.com", now=50) == ("h3", 443)
        assert cache.lookup("a.com", now=150) is None

    def test_miss(self):
        assert AltSvcCache().lookup("a.com", now=0) is None


class TestUpgradeSimulation:
    def make_site(self, **kwargs):
        return SiteConfig(host="a.com", **kwargs)

    def test_https_rr_never_plaintext(self):
        simulator = UpgradeSimulator(self.make_site())
        outcomes = simulator.run_visits(MECH_HTTPS_RR, 5)
        assert all(o.plaintext_requests == 0 for o in outcomes)
        assert all(not o.mitm_window for o in outcomes)

    def test_redirect_always_plaintext(self):
        simulator = UpgradeSimulator(self.make_site())
        outcomes = simulator.run_visits(MECH_REDIRECT, 5)
        assert all(o.plaintext_requests == 1 for o in outcomes)
        assert all(o.mitm_window for o in outcomes)

    def test_hsts_only_first_visit_plaintext(self):
        simulator = UpgradeSimulator(self.make_site())
        outcomes = simulator.run_visits(MECH_HSTS, 5)
        assert outcomes[0].plaintext_requests == 1
        assert all(o.plaintext_requests == 0 for o in outcomes[1:])

    def test_preload_never_plaintext(self):
        simulator = UpgradeSimulator(self.make_site(preloaded=True))
        outcomes = simulator.run_visits(MECH_HSTS_PRELOAD, 3)
        assert all(o.plaintext_requests == 0 for o in outcomes)

    def test_preload_without_listing_behaves_like_hsts(self):
        simulator = UpgradeSimulator(self.make_site(preloaded=False))
        outcomes = simulator.run_visits(MECH_HSTS_PRELOAD, 3)
        assert outcomes[0].plaintext_requests == 1
        assert outcomes[1].plaintext_requests == 0

    def test_alt_svc_first_visit_plaintext(self):
        simulator = UpgradeSimulator(self.make_site())
        outcomes = simulator.run_visits(MECH_ALT_SVC, 3)
        assert outcomes[0].plaintext_requests == 1
        assert all(o.plaintext_requests == 0 for o in outcomes[1:])

    def test_http_only_site(self):
        simulator = UpgradeSimulator(self.make_site(supports_https=False))
        outcome = simulator.visit(MECH_REDIRECT, 1)
        assert outcome.final_scheme == "http"
        assert outcome.mitm_window

    def test_unknown_mechanism(self):
        simulator = UpgradeSimulator(self.make_site())
        with pytest.raises(ValueError):
            simulator.visit("carrier-pigeon", 1)


class TestComparison:
    def test_https_rr_wins(self):
        results = compare_mechanisms(SiteConfig(host="a.com", preloaded=True), visits=5)
        assert set(results) == set(ALL_MECHANISMS)
        rr = results[MECH_HTTPS_RR]
        assert rr["plaintext_requests"] == 0
        assert rr["mitm_windows"] == 0
        # Every mechanism's round-trip bill is >= the HTTPS RR one.
        for mechanism, stats in results.items():
            assert stats["round_trips"] >= rr["round_trips"], mechanism
        # And the status quo is the worst.
        assert results[MECH_REDIRECT]["round_trips"] == max(
            stats["round_trips"] for stats in results.values()
        )
