"""Tests for the HTTPS-record linter and autopilot (§7 automation)."""

import pytest

from repro.dnscore import Name, rdtypes
from repro.ech.keys import ECHKeyManager
from repro.manage import AutoPilot, Severity, lint_zone
from repro.zones.zone import Zone

import base64


def make_zone(https_rdata: str, a_ip="192.0.2.1", aaaa_ip="2001:db8::1", sign=False):
    zone = Zone(Name.from_text("shop.example."))
    zone.ensure_soa()
    zone.add_record("shop.example.", "A", a_ip)
    zone.add_record("shop.example.", "AAAA", aaaa_ip)
    zone.add_record("shop.example.", "HTTPS", https_rdata)
    if sign:
        zone.sign(1000)
    return zone


def codes(findings):
    return {finding.code for finding in findings}


class TestLinter:
    def test_clean_record_no_findings(self):
        zone = make_zone("1 . alpn=h2 ipv4hint=192.0.2.1 ipv6hint=2001:db8::1")
        assert lint_zone(zone) == []

    def test_hint_mismatch_detected(self):
        zone = make_zone("1 . alpn=h2 ipv4hint=203.0.113.9")
        findings = lint_zone(zone)
        assert "ipv4hint-mismatch" in codes(findings)
        assert all(f.severity is Severity.ERROR for f in findings)

    def test_ipv6_hint_mismatch(self):
        zone = make_zone("1 . alpn=h2 ipv6hint=2001:db8::dead")
        assert "ipv6hint-mismatch" in codes(lint_zone(zone))

    def test_alias_self_target(self):
        zone = Zone(Name.from_text("shop.example."))
        zone.ensure_soa()
        zone.add_record("shop.example.", "HTTPS", "0 .")
        assert "alias-self-target" in codes(lint_zone(zone))

    def test_alias_dangling_target(self):
        zone = Zone(Name.from_text("shop.example."))
        zone.ensure_soa()
        zone.add_record("shop.example.", "HTTPS", "0 pool.shop.example.")
        assert "alias-dangling-target" in codes(lint_zone(zone))

    def test_ip_literal_target(self):
        zone = make_zone("1 1\\.2\\.3\\.4. alpn=h2")
        assert "target-is-ip-literal" in codes(lint_zone(zone))

    def test_empty_service_mode(self):
        zone = make_zone("1 .")
        assert "service-mode-empty" in codes(lint_zone(zone))

    def test_malformed_ech(self):
        bad = base64.b64encode(b"\x00\x08garbage!").decode()
        zone = make_zone(f"1 . alpn=h2 ech={bad}")
        assert "ech-malformed" in codes(lint_zone(zone))

    def test_stale_ech_key(self):
        km = ECHKeyManager("cover.example", seed=b"lint", rotation_hours=1.0)
        stale = base64.b64encode(km.published_wire(0)).decode()
        zone = make_zone(f"1 . alpn=h2 ech={stale}")
        findings = lint_zone(zone, ech_manager=km, current_hour=10)
        assert "ech-stale-key" in codes(findings)
        # Fresh key passes.
        fresh = base64.b64encode(km.published_wire(10)).decode()
        zone = make_zone(f"1 . alpn=h2 ech={fresh}")
        assert "ech-stale-key" not in codes(lint_zone(zone, ech_manager=km, current_hour=10))


class TestAutoPilot:
    def test_resyncs_hints(self):
        zone = make_zone("1 . alpn=h2 ipv4hint=203.0.113.9 ipv6hint=2001:db8::dead")
        pilot = AutoPilot(zone)
        actions = pilot.run()
        assert {a.code for a in actions} == {"resync-ipv4hint", "resync-ipv6hint"}
        assert pilot.remaining_findings() == []
        record = zone.get_rrset(zone.apex, rdtypes.HTTPS)[0]
        assert record.params.ipv4hint == ("192.0.2.1",)
        assert record.params.ipv6hint == ("2001:db8::1",)

    def test_renews_stale_ech(self):
        km = ECHKeyManager("cover.example", seed=b"pilot", rotation_hours=1.0)
        stale = base64.b64encode(km.published_wire(0)).decode()
        zone = make_zone(f"1 . alpn=h2 ipv4hint=192.0.2.1 ech={stale}")
        pilot = AutoPilot(zone, ech_manager=km)
        actions = pilot.run(current_hour=10)
        assert any(a.code == "renew-ech" for a in actions)
        record = zone.get_rrset(zone.apex, rdtypes.HTTPS)[0]
        assert record.params.ech == km.published_wire(10)
        assert pilot.remaining_findings(current_hour=10) == []

    def test_renews_malformed_ech(self):
        km = ECHKeyManager("cover.example", seed=b"pilot")
        bad = base64.b64encode(b"\x00\x04junk").decode()
        zone = make_zone(f"1 . alpn=h2 ipv4hint=192.0.2.1 ech={bad}")
        pilot = AutoPilot(zone, ech_manager=km)
        pilot.run(current_hour=3)
        record = zone.get_rrset(zone.apex, rdtypes.HTTPS)[0]
        assert record.params.ech == km.published_wire(3)

    def test_noop_when_clean(self):
        zone = make_zone("1 . alpn=h2 ipv4hint=192.0.2.1 ipv6hint=2001:db8::1")
        assert AutoPilot(zone).run() == []

    def test_resigns_signed_zone(self):
        zone = make_zone("1 . alpn=h2 ipv4hint=203.0.113.9", sign=True)
        pilot = AutoPilot(zone)
        actions = pilot.run(resign_at=2000)
        assert any(a.code == "zone-resigned" for a in actions)
        sigs = zone.get_rrsigs(zone.apex, rdtypes.HTTPS)
        assert sigs and sigs[0].inception == 2000

    def test_alias_records_left_alone(self):
        zone = Zone(Name.from_text("shop.example."))
        zone.ensure_soa()
        zone.add_record("shop.example.", "HTTPS", "0 .")
        pilot = AutoPilot(zone)
        assert pilot.run() == []
        # But the linter still flags it for a human.
        assert pilot.remaining_findings()

    def test_simulated_rotation_schedule(self):
        """Running the autopilot every hour keeps ECH permanently fresh —
        the §4.4.2 inconsistency window disappears."""
        km = ECHKeyManager("cover.example", seed=b"sched", rotation_hours=1.26)
        first = base64.b64encode(km.published_wire(0)).decode()
        zone = make_zone(f"1 . alpn=h2 ipv4hint=192.0.2.1 ech={first}")
        pilot = AutoPilot(zone, ech_manager=km)
        for hour in range(0, 24):
            pilot.run(current_hour=hour)
            assert pilot.remaining_findings(current_hour=hour) == []
        renewals = [a for a in pilot.log if a.code == "renew-ech"]
        # With retain_generations=1 a renewal is needed roughly every
        # other generation; at minimum several per day.
        assert len(renewals) >= 4
