"""Tests for repro.devtools.codelint: the AST invariant linter.

Covers every rule with paired good/bad fixtures
(``tests/codelint_fixtures/``), the suppression syntax, the committed
baseline (no drift against a fresh run over ``src/``), the CLI exit
codes, the unified zone-lint/code-lint findings core, and — the
acceptance mutations — that reintroducing each historical bug pattern
(the PR 4 ``Name.__hash__`` cache, an unsorted set iteration into a
row, an untagged ``StudySpec`` field) produces a failing finding.
"""

import json
import os
import re
import shutil
import subprocess

import pytest

from repro.devtools import codelint
from repro.devtools.codelint import (
    Finding,
    ProjectRule,
    Severity,
    all_rules,
    lint_paths,
    lint_source,
    load_baseline,
    parse_source,
    partition,
    project_findings,
    project_scope_rules,
    run_lint,
)
from repro.devtools.codelint.baseline import BaselineError, write_baseline
from repro.devtools.codelint.cli import main as codelint_main
from repro.devtools.codelint.engine import _discover_consumers, iter_python_files

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
FIXTURES = os.path.join(REPO_ROOT, "tests", "codelint_fixtures")
SRC = os.path.join(REPO_ROOT, "src")
BASELINE = os.path.join(REPO_ROOT, "codelint-baseline.json")

#: project-scope fixture tree → expected codes when linting the bad_*
#: tree as a whole (good_* trees must be clean).  Unlike FIXTURE_RULES
#: these are directories of modules: the rules under test need the
#: cross-file graph.
PROJECT_FIXTURES = {
    "det2": {"DET02"},
    "layer": {"LAYER01"},
    "race": {"RACE01"},
    "dead": {"DEAD01"},
}

#: fixture directory → (module override, expected codes in bad_*.py)
FIXTURE_RULES = {
    "det": ("repro.simnet.fixture", {"DET01"}),
    "hash_cached": ("repro.dnscore.fixture", {"HASH01"}),
    "hash_builtin": ("repro.scanner.fixture", {"HASH02"}),
    "ord": ("repro.scanner.fixture", {"ORD01", "ORD02"}),
    "tag": ("repro.study", {"TAG01"}),
    "gc": ("repro.scanner.fixture", {"GC01"}),
    "fstr": ("repro.manage.fixture", {"FSTR01"}),
    "inv": ("repro.simnet.fixture", {"INV01"}),
}


def lint_fixture(directory, filename, module=None):
    path = os.path.join(FIXTURES, directory, filename)
    if module is None:
        module = FIXTURE_RULES[directory][0]
    return lint_source(parse_source(path, module=module))


def fixture_files(directory, prefix):
    names = sorted(
        name for name in os.listdir(os.path.join(FIXTURES, directory))
        if name.startswith(prefix) and name.endswith(".py")
    )
    assert names, f"no {prefix}*.py fixture in {directory}"
    return names


class TestFixturePairs:
    """Every rule has a bad fixture that fires and a good twin that
    stays clean."""

    @pytest.mark.parametrize("directory", sorted(FIXTURE_RULES))
    def test_bad_fixture_fires_exactly_its_rule(self, directory):
        module, expected_codes = FIXTURE_RULES[directory]
        for filename in fixture_files(directory, "bad_"):
            findings = lint_fixture(directory, filename, module)
            assert findings, f"{directory}/{filename} produced no findings"
            assert {f.code for f in findings} == expected_codes

    @pytest.mark.parametrize("directory", sorted(FIXTURE_RULES))
    def test_good_fixture_is_clean(self, directory):
        module, _ = FIXTURE_RULES[directory]
        for filename in fixture_files(directory, "good_"):
            findings = lint_fixture(directory, filename, module)
            assert findings == [], f"{directory}/{filename}: {findings}"

    def test_det_counts_every_banned_call(self):
        findings = lint_fixture("det", "bad_ambient_randomness.py")
        # randrange, time.time, datetime.now, date.today, urandom, uuid4
        assert len(findings) == 6

    def test_hash01_flags_both_shapes(self):
        findings = lint_fixture("hash_cached", "bad_pickled_cache.py")
        messages = " / ".join(f.message for f in findings)
        assert len(findings) == 2
        assert "no __getstate__" in messages  # default pickling
        assert "still ships it" in messages  # leaky __getstate__

    def test_det_rule_is_scoped_to_restricted_subsystems(self):
        # The same stochastic code outside simnet/resolver/scanner/
        # zones/dnscore (e.g. benchmarks, browser policy) is legal.
        findings = lint_fixture(
            "det", "bad_ambient_randomness.py", module="repro.browser.fixture"
        )
        assert findings == []

    def test_determinism_module_itself_is_exempt(self):
        findings = lint_fixture(
            "det", "bad_ambient_randomness.py", module="repro.simnet.determinism"
        )
        assert findings == []


class TestSuppressions:
    BAD_LINE = "for row in {'b', 'a'}:\n    print(row)\n"

    def lint_text(self, text, module="repro.scanner.fixture"):
        return lint_source(parse_source("fixture.py", text=text, module=module))

    def test_finding_without_suppression(self):
        assert {f.code for f in self.lint_text(self.BAD_LINE)} == {"ORD01"}

    def test_inline_disable_is_honored(self):
        text = "for row in {'b', 'a'}:  # codelint: disable=ORD01\n    print(row)\n"
        assert self.lint_text(text) == []

    def test_disable_is_case_insensitive_and_multi_code(self):
        text = (
            "import gc\n"
            "def f():\n"
            "    gc.disable()  # codelint: disable=gc01, ord01\n"
        )
        assert self.lint_text(text) == []

    def test_disable_only_covers_its_own_line(self):
        text = (
            "# codelint: disable=ORD01\n"
            "for row in {'b', 'a'}:\n"
            "    print(row)\n"
        )
        assert {f.code for f in self.lint_text(text)} == {"ORD01"}

    def test_unknown_code_is_rejected(self):
        text = "x = 1  # codelint: disable=NOPE99\n"
        findings = self.lint_text(text)
        assert [f.code for f in findings] == ["SUP01"]
        assert "NOPE99" in findings[0].message
        assert findings[0].line == 1

    def test_empty_disable_is_rejected(self):
        findings = self.lint_text("x = 1  # codelint: disable=\n")
        assert [f.code for f in findings] == ["SUP01"]

    def test_unknown_code_cannot_suppress_itself(self):
        text = "for row in {'b', 'a'}:  # codelint: disable=NOPE99\n    pass\n"
        assert {f.code for f in self.lint_text(text)} == {"ORD01", "SUP01"}

    def test_pattern_inside_string_is_not_a_suppression(self):
        text = (
            "doc = '# codelint: disable=ORD01'\n"
            "for row in {'b', 'a'}: print(row)\n"
        )
        # the string mentions the syntax on line 1; the finding on line 2
        # must survive and no SUP finding may appear
        assert {f.code for f in self.lint_text(text)} == {"ORD01"}


class TestBaseline:
    def test_committed_baseline_matches_fresh_run(self):
        """No drift: linting src/ produces exactly the committed
        baseline (which project policy keeps empty — true positives are
        fixed, not grandfathered)."""
        tolerated = load_baseline(BASELINE)
        findings = lint_paths([SRC])
        new, grandfathered = partition(findings, tolerated)
        assert new == [], f"src/ has non-baselined findings: {new}"
        assert len(grandfathered) == sum(tolerated.values()), (
            "stale baseline entries no longer match any finding"
        )

    def test_partition_counts_per_identity(self):
        finding = Finding("ORD01", Severity.ERROR, "a.py", "msg", line=3)
        twin = Finding("ORD01", Severity.ERROR, "a.py", "msg", line=9)
        tolerated = {finding.identity(): 1}
        new, grandfathered = partition([finding, twin], tolerated)
        # identity ignores line numbers; one is absorbed, the second is new
        assert len(grandfathered) == 1 and len(new) == 1

    def test_write_then_load_round_trip(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        finding = Finding("GC01", Severity.ERROR, "x.py", "bare toggle", line=2)
        write_baseline(path, [finding, finding])
        assert load_baseline(path) == {finding.identity(): 2}

    def test_malformed_baseline_raises(self, tmp_path):
        path = tmp_path / "nonsense.json"
        path.write_text('{"magic": "something-else"}')
        with pytest.raises(BaselineError):
            load_baseline(str(path))


class TestMutations:
    """The acceptance mutations: each historical bug pattern, freshly
    reintroduced into today's source, must produce a failing finding."""

    def test_reintroducing_name_hash_cache_bug_fires(self):
        names_py = os.path.join(SRC, "repro", "dnscore", "names.py")
        with open(names_py) as handle:
            source = handle.read()
        # PR 4's fix was the __getstate__/__setstate__ pair; deleting it
        # restores default pickling of the cached hash.
        mutated = re.sub(
            r"    def __getstate__.*?    def __repr__",
            "    def __repr__",
            source,
            flags=re.DOTALL,
        )
        assert mutated != source, "mutation did not apply"
        clean = lint_source(parse_source(names_py, module="repro.dnscore.names"))
        assert [f for f in clean if f.code == "HASH01"] == []
        findings = lint_source(
            parse_source(names_py, text=mutated, module="repro.dnscore.names")
        )
        assert any(
            f.code == "HASH01" and "Name" in f.message for f in findings
        ), findings

    def test_unsorted_set_iteration_into_row_fires(self):
        text = (
            "def build_rows(snapshot, rows):\n"
            "    hostnames = set(snapshot)\n"
            "    for hostname in hostnames:\n"
            "        rows.append((hostname, snapshot[hostname]))\n"
        )
        findings = lint_source(
            parse_source("rows.py", text=text, module="repro.scanner.fixture")
        )
        assert [f.code for f in findings] == ["ORD01"]
        # and the sorted() version is clean
        fixed = text.replace("in hostnames:", "in sorted(hostnames):")
        assert lint_source(
            parse_source("rows.py", text=fixed, module="repro.scanner.fixture")
        ) == []

    def test_new_untagged_studyspec_field_fires(self):
        study_py = os.path.join(SRC, "repro", "study.py")
        with open(study_py) as handle:
            source = handle.read()
        mutated = source.replace(
            "    day_step: int = 7\n",
            "    day_step: int = 7\n    surprise_knob: int = 0\n",
        )
        assert mutated != source, "mutation did not apply"
        clean = lint_source(parse_source(study_py, module="repro.study"))
        assert [f for f in clean if f.code == "TAG01"] == []
        findings = lint_source(
            parse_source(study_py, text=mutated, module="repro.study")
        )
        assert any(
            f.code == "TAG01" and "surprise_knob" in f.message for f in findings
        ), findings


    def test_removing_answer_cache_invalidation_fires(self):
        """The paired-invalidation invariant: deleting one of world.py's
        answer_cache.invalidate() lines next to a _zone_cache.clear()
        must trip INV01 — otherwise the fast path would serve answers
        rendered from zones that no longer exist."""
        world_py = os.path.join(SRC, "repro", "simnet", "world.py")
        with open(world_py) as handle:
            source = handle.read()
        mutated = re.sub(
            r"\n *self\.answer_cache\.invalidate\(\)", "", source, count=1
        )
        assert mutated != source, "mutation did not apply"
        clean = lint_source(parse_source(world_py, module="repro.simnet.world"))
        assert [f for f in clean if f.code == "INV01"] == []
        findings = lint_source(
            parse_source(world_py, text=mutated, module="repro.simnet.world")
        )
        assert any(
            f.code == "INV01" and "_zone_cache.clear()" in f.message
            for f in findings
        ), findings

    def test_dropping_scenario_from_cache_tag_fires(self):
        """The chaos `scenario` field is dataset identity; silently
        dropping it from cache_tag() would alias faulted datasets onto
        fault-free cache entries. TAG01 must catch that mutation."""
        study_py = os.path.join(SRC, "repro", "study.py")
        with open(study_py) as handle:
            source = handle.read()
        mutated = source.replace(
            "        if self.scenario is not None and self.scenario:\n"
            '            tag_kwargs["scenario"] = self.scenario.canonical_tag()\n',
            "",
        )
        assert mutated != source, "mutation did not apply"
        clean = lint_source(parse_source(study_py, module="repro.study"))
        assert [f for f in clean if f.code == "TAG01"] == []
        findings = lint_source(
            parse_source(study_py, text=mutated, module="repro.study")
        )
        assert any(
            f.code == "TAG01" and "scenario" in f.message for f in findings
        ), findings


class TestEngine:
    def test_module_guess(self):
        from repro.devtools.codelint.engine import module_guess

        assert module_guess("src/repro/simnet/world.py") == "repro.simnet.world"
        assert module_guess("src/repro/dnscore/__init__.py") == "repro.dnscore"
        assert module_guess("/abs/path/src/repro/study.py") == "repro.study"
        assert module_guess("standalone.py") == "standalone"

    def test_syntax_error_becomes_parse_finding(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        findings = lint_paths([str(tmp_path)])
        assert [f.code for f in findings] == ["PARSE"]
        assert findings[0].severity is Severity.ERROR

    def test_rule_catalogue_is_documented(self):
        readme = os.path.join(
            SRC, "repro", "devtools", "codelint", "README.md"
        )
        with open(readme) as handle:
            text = handle.read()
        for rule in all_rules():
            assert rule.code in text, f"{rule.code} missing from README"
            assert rule.rationale, f"{rule.code} has no rationale"

    def test_finding_renderers(self):
        finding = Finding("DET01", Severity.ERROR, "a.py", "boom", line=4, col=2)
        zone_finding = Finding("ech-stale-key", Severity.WARNING, "shop.example.", "old key")
        text = codelint.render_text([zone_finding, finding])
        assert text.splitlines() == [
            "[error] DET01 a.py:4:2: boom",
            "[warning] ech-stale-key shop.example.: old key",
        ]
        payload = json.loads(codelint.render_json([finding], run="unit"))
        assert payload["run"] == "unit"
        assert payload["counts"]["error"] == 1
        assert payload["findings"][0]["line"] == 4


class TestCli:
    def test_clean_path_exits_zero(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("VALUE = 1\n")
        assert codelint_main([str(clean), "--no-baseline"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_one(self, capsys):
        bad = os.path.join(FIXTURES, "fstr", "bad_dropped_values.py")
        assert codelint_main([bad, "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "FSTR01" in out

    def test_json_format_and_artifact(self, tmp_path, capsys):
        bad = os.path.join(FIXTURES, "fstr", "bad_dropped_values.py")
        artifact = tmp_path / "findings.json"
        rc = codelint_main([
            bad, "--no-baseline", "--format", "json", "--json-out", str(artifact),
        ])
        assert rc == 1
        stdout_payload = json.loads(capsys.readouterr().out)
        file_payload = json.loads(artifact.read_text())
        assert stdout_payload == file_payload
        assert file_payload["new"] == 1
        assert file_payload["findings"][0]["code"] == "FSTR01"

    def test_write_baseline_then_gate(self, tmp_path, capsys):
        target = tmp_path / "legacy.py"
        shutil.copyfile(
            os.path.join(FIXTURES, "fstr", "bad_dropped_values.py"), target
        )
        baseline = tmp_path / "baseline.json"
        assert codelint_main([
            str(target), "--write-baseline", "--baseline", str(baseline),
        ]) == 0
        # grandfathered finding no longer fails the gate...
        assert codelint_main([
            str(target), "--baseline", str(baseline),
        ]) == 0
        # ...but a second occurrence of the same pattern does
        target.write_text(
            target.read_text()
            + "\n\ndef second():\n    return f'also dropped'\n"
        )
        assert codelint_main([str(target), "--baseline", str(baseline)]) == 1
        capsys.readouterr()

    def test_list_rules(self, capsys):
        assert codelint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("DET01", "HASH01", "ORD01", "TAG01", "GC01", "FSTR01"):
            assert code in out

    def test_missing_path_is_usage_error(self):
        with pytest.raises(SystemExit) as excinfo:
            codelint_main(["does/not/exist"])
        assert excinfo.value.code == 2

    def test_repro_scan_lint_code_subcommand(self, tmp_path, capsys):
        from repro.cli import scan_main

        clean = tmp_path / "clean.py"
        clean.write_text("VALUE = 1\n")
        assert scan_main(["lint-code", str(clean), "--no-baseline"]) == 0
        capsys.readouterr()


class TestZoneLintUnification:
    def test_manage_finding_is_the_shared_dataclass(self):
        from repro.manage import Finding as ZoneFinding, Severity as ZoneSeverity

        assert ZoneFinding is Finding
        assert ZoneSeverity is Severity

    def test_zone_findings_render_through_shared_renderers(self):
        from repro.dnscore import Name
        from repro.manage import lint_zone
        from repro.zones.zone import Zone

        zone = Zone(Name.from_text("shop.example."))
        zone.ensure_soa()
        zone.add_record("shop.example.", "A", "192.0.2.1")
        zone.add_record("shop.example.", "AAAA", "2001:db8::1")
        zone.add_record("shop.example.", "HTTPS", "1 . alpn=h2 ipv6hint=2001:db8::dead")
        findings = lint_zone(zone)
        assert [f.code for f in findings] == ["ipv6hint-mismatch"]
        # the f-string bug fix: the message carries both address lists
        assert "2001:db8::dead" in findings[0].message
        assert "2001:db8::1" in findings[0].message
        payload = json.loads(codelint.render_json(findings))
        assert payload["findings"][0]["where"] == "shop.example."
        assert "line" not in payload["findings"][0]

    def test_repro_scan_lint_zone_subcommand(self, capsys):
        from repro.cli import scan_main

        rc = scan_main([
            "lint-zone", "err.ee", "--population", "300",
            "--date", "2023-09-01",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "1 zone(s)" in out


def project_fixture_trees(group, prefix):
    root = os.path.join(FIXTURES, group)
    names = sorted(
        name for name in os.listdir(root)
        if name.startswith(prefix) and os.path.isdir(os.path.join(root, name))
    )
    assert names, f"no {prefix}* tree under {group}"
    return [os.path.join(root, name) for name in names]


class TestProjectFixturePairs:
    """Each project-scope rule has a bad fixture *tree* that fires and
    a good twin tree that stays clean, linted through the same
    two-scope ``lint_paths`` entry point CI uses."""

    @pytest.mark.parametrize("group", sorted(PROJECT_FIXTURES))
    def test_bad_tree_fires_exactly_its_rule(self, group):
        for tree in project_fixture_trees(group, "bad_"):
            findings = lint_paths([tree])
            assert findings, f"{tree} produced no findings"
            assert {f.code for f in findings} == PROJECT_FIXTURES[group], (
                tree, findings,
            )

    @pytest.mark.parametrize("group", sorted(PROJECT_FIXTURES))
    def test_good_tree_is_clean(self, group):
        for tree in project_fixture_trees(group, "good_"):
            assert lint_paths([tree]) == [], tree

    def test_det2_message_carries_the_full_chain(self):
        tree = os.path.join(FIXTURES, "det2", "bad_transitive")
        findings = [f for f in lint_paths([tree]) if f.code == "DET02"]
        assert len(findings) == 1
        message = findings[0].message
        assert (
            "simnet.simhelp._shape_timing -> reporting.utilmod._stamp "
            "-> reporting.utilmod._now_ms -> time.time()"
        ) in message

    def test_layer_cycle_reported_once_per_edge(self):
        tree = os.path.join(FIXTURES, "layer", "bad_cycle")
        findings = [f for f in lint_paths([tree]) if f.code == "LAYER01"]
        assert len(findings) == 2
        assert all("import cycle" in f.message for f in findings)

    def test_race_fires_on_both_branches(self):
        tree = os.path.join(FIXTURES, "race", "bad_unlocked")
        messages = [f.message for f in lint_paths([tree])]
        assert any("outside 'with self._lock:'" in m for m in messages)
        assert any("module-level shared state" in m for m in messages)

    def test_project_rules_are_registered(self):
        codes = {rule.code for rule in project_scope_rules()}
        assert codes == {"DET02", "LAYER01", "RACE01", "DEAD01"}
        assert all(
            isinstance(rule, ProjectRule) for rule in project_scope_rules()
        )
        assert {rule.code for rule in all_rules()} >= codes


class TestProjectMutations:
    """The acceptance mutations for the project scope: reintroduce each
    historical cross-module bug shape into today's source and prove the
    matching rule fires."""

    def test_unlocking_signature_memo_fires_race01(self):
        signing_py = os.path.join(SRC, "repro", "dnssec", "signing.py")
        with open(signing_py) as handle:
            source = handle.read()
        # Drop the lock from SignatureMemo.sign's fast path: the memo is
        # shared across the pipeline's thread-mode workers, so the
        # unguarded move_to_end/hit-count writes are a data race.
        mutated = source.replace(
            "        with self._lock:\n"
            "            signature = self._entries.get(memo_key)",
            "        if True:\n"
            "            signature = self._entries.get(memo_key)",
        )
        assert mutated != source, "mutation did not apply"
        clean = project_findings([parse_source(signing_py)])
        assert [f for f in clean if f.code == "RACE01"] == []
        findings = project_findings([parse_source(signing_py, text=mutated)])
        race = [f for f in findings if f.code == "RACE01"]
        assert race, findings
        assert any(
            "SignatureMemo.sign" in f.message and "self._lock" in f.message
            for f in race
        ), race

    def test_upward_import_in_wire_fires_layer01(self):
        wire_py = os.path.join(SRC, "repro", "dnscore", "wire.py")
        with open(wire_py) as handle:
            source = handle.read()
        mutated = source + "\nfrom repro.scanner import pipeline as _probe\n"
        clean = project_findings([parse_source(wire_py)])
        assert [f for f in clean if f.code == "LAYER01"] == []
        findings = project_findings([parse_source(wire_py, text=mutated)])
        assert any(
            f.code == "LAYER01" and "repro.scanner" in f.message
            and "layering violation" in f.message
            for f in findings
        ), findings

    def test_simnet_helper_reaching_time_two_calls_deep_fires_det02(self):
        helper = parse_source(
            "simhelp.py",
            text=(
                "from repro.reporting.shaper import _shape\n\n"
                "def _jitter(values):\n"
                "    return [_shape(v) for v in values]\n"
            ),
            module="repro.simnet.simhelp",
        )
        shaper = parse_source(
            "shaper.py",
            text=(
                "import time\n\n"
                "def _shape(v):\n"
                "    return _scale(v)\n\n"
                "def _scale(v):\n"
                "    return v * time.time()\n"
            ),
            module="repro.reporting.shaper",
        )
        findings = project_findings([helper, shaper])
        det2 = [f for f in findings if f.code == "DET02"]
        assert len(det2) == 1, findings
        assert (
            "simnet.simhelp._jitter -> reporting.shaper._shape "
            "-> reporting.shaper._scale -> time.time()"
        ) in det2[0].message

    def test_new_orphan_public_function_fires_dead01(self):
        files = iter_python_files([SRC])
        timeline_py = os.path.join(SRC, "repro", "simnet", "timeline.py")
        # Assemble the name so this very test file (a DEAD01 *consumer*
        # whose string tokens count as references) never contains it.
        orphan = "orphaned" + "_probe" + "_fn"
        sources = []
        for path in files:
            if os.path.abspath(path) == os.path.abspath(timeline_py):
                with open(path) as handle:
                    text = handle.read()
                text += f"\n\ndef {orphan}():\n    return 99\n"
                sources.append(parse_source(path, text=text))
            else:
                sources.append(parse_source(path))
        consumers, texts = _discover_consumers(
            [SRC], {os.path.abspath(path) for path in files}
        )
        findings = project_findings(
            sources, consumers, extra_reference_texts=texts
        )
        assert any(
            f.code == "DEAD01" and orphan in f.message for f in findings
        ), [f for f in findings if f.code == "DEAD01"]


class TestProjectSuppressions:
    def test_campaign_shim_suppression_is_annotated_and_load_bearing(self):
        """The one intentional LAYER01 in today's tree: the deprecated
        load_or_run_campaign shim wraps the Study facade one layer up.
        The suppression must exist, carry its reason, and be the only
        thing keeping the finding quiet."""
        campaign_py = os.path.join(SRC, "repro", "scanner", "campaign.py")
        with open(campaign_py) as handle:
            source = handle.read()
        assert "# codelint: disable=LAYER01" in source
        assert "Deliberate upward import" in source  # the reason annotation
        clean = project_findings([parse_source(campaign_py)])
        assert [f for f in clean if f.code == "LAYER01"] == []
        mutated = source.replace("  # codelint: disable=LAYER01", "")
        assert mutated != source
        findings = project_findings([parse_source(campaign_py, text=mutated)])
        assert any(
            f.code == "LAYER01" and "repro.study" in f.message
            for f in findings
        ), findings

    def test_project_finding_suppressible_on_its_line(self):
        text = (
            "from repro.scanner import runner  # codelint: disable=LAYER01\n"
        )
        src = parse_source("wiremod.py", text=text, module="repro.dnscore.wiremod")
        assert project_findings([src]) == []
        bare = parse_source(
            "wiremod.py",
            text="from repro.scanner import runner\n",
            module="repro.dnscore.wiremod",
        )
        assert [f.code for f in project_findings([bare])] == ["LAYER01"]


class TestProjectEngine:
    def test_run_lint_collects_stats(self, tmp_path):
        target = tmp_path / "m.py"
        target.write_text("VALUE = 1\n")
        run = run_lint([str(tmp_path)])
        assert run.files == 1
        assert run.findings == []
        payload = run.stats_json()
        assert set(payload) == {"files", "rules"}
        for code in ("DET01", "DET02", "LAYER01", "RACE01", "DEAD01", "graph"):
            assert code in payload["rules"], code
            assert set(payload["rules"][code]) == {"seconds", "findings"}

    def test_dead01_is_silent_without_the_entry_module(self, tmp_path):
        # A narrow lint (one subsystem, no repro.cli) must not call
        # everything dead.
        src = parse_source(
            "lonely.py",
            text="def totally_unreferenced():\n    return 1\n",
            module="repro.simnet.lonely",
        )
        assert project_findings([src]) == []

    def test_full_tree_lints_clean_in_both_scopes(self):
        """The acceptance gate: today's src/ has no DET02/LAYER01/
        RACE01/DEAD01 findings left (true positives were fixed or carry
        verified suppressions)."""
        findings = lint_paths([SRC])
        assert findings == [], findings


class TestCliProjectFlags:
    def test_stats_flag_and_artifact(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("VALUE = 1\n")
        stats_file = tmp_path / "stats.json"
        rc = codelint_main([
            str(clean), "--no-baseline", "--stats",
            "--stats-out", str(stats_file),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "codelint stats:" in out
        payload = json.loads(stats_file.read_text())
        assert payload["files"] == 1
        assert "DET02" in payload["rules"] and "DET01" in payload["rules"]

    def test_stats_included_in_json_report(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("VALUE = 1\n")
        rc = codelint_main([
            str(clean), "--no-baseline", "--stats", "--format", "json",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert "stats" in payload
        assert payload["stats"]["files"] == 1

    def test_changed_filters_to_changed_files(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)

        def git(*args):
            subprocess.run(
                ["git", *args], check=True, capture_output=True, text=True,
            )

        git("init", "-q")
        git("config", "user.email", "lint@example.invalid")
        git("config", "user.name", "lint")
        (tmp_path / "old.py").write_text("def f():\n    return f'dropped'\n")
        git("add", "old.py")
        git("commit", "-qm", "seed")
        # the committed finding is filtered out when nothing changed
        assert codelint_main(["old.py", "--no-baseline", "--changed"]) == 0
        capsys.readouterr()
        # an untracked file with the same bug is reported; old.py is not
        (tmp_path / "new.py").write_text("def g():\n    return f'dropped'\n")
        rc = codelint_main([
            "old.py", "new.py", "--no-baseline", "--changed",
        ])
        out = capsys.readouterr().out
        assert rc == 1
        assert "new.py" in out and "old.py:" not in out

    def test_changed_outside_git_exits_two(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        monkeypatch.setenv("GIT_DIR", str(tmp_path / "definitely-not-a-repo"))
        clean = tmp_path / "clean.py"
        clean.write_text("VALUE = 1\n")
        rc = codelint_main([str(clean), "--no-baseline", "--changed"])
        assert rc == 2
        assert "--changed failed" in capsys.readouterr().err

    def test_list_rules_shows_project_scope(self, capsys):
        assert codelint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("DET02", "LAYER01", "RACE01", "DEAD01"):
            assert code in out
        assert "project]" in out
