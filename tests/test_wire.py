"""Unit tests for the low-level wire reader/writer."""

import pytest

from repro.dnscore.names import BadPointer, Name
from repro.dnscore.wire import WireError, WireReader, WireWriter


class TestWriter:
    def test_integers(self):
        writer = WireWriter()
        writer.write_u8(0xAB)
        writer.write_u16(0x1234)
        writer.write_u32(0xDEADBEEF)
        assert writer.getvalue() == b"\xab\x12\x34\xde\xad\xbe\xef"

    def test_name_compression(self):
        writer = WireWriter()
        writer.write_name(Name.from_text("www.example.com."))
        length_first = len(writer)
        writer.write_name(Name.from_text("mail.example.com."))
        # Second name shares the "example.com." suffix via a 2-byte pointer.
        assert len(writer) == length_first + 1 + 4 + 2

    def test_pointer_to_whole_name(self):
        writer = WireWriter()
        writer.write_name(Name.from_text("a.com."))
        before = len(writer)
        writer.write_name(Name.from_text("a.com."))
        assert len(writer) == before + 2

    def test_compression_case_insensitive(self):
        writer = WireWriter()
        writer.write_name(Name.from_text("A.COM."))
        before = len(writer)
        writer.write_name(Name.from_text("a.com."))
        assert len(writer) == before + 2

    def test_compression_disabled(self):
        writer = WireWriter(enable_compression=False)
        writer.write_name(Name.from_text("a.com."))
        before = len(writer)
        writer.write_name(Name.from_text("a.com."))
        assert len(writer) == before * 2

    def test_no_compression_flag_per_name(self):
        writer = WireWriter()
        writer.write_name(Name.from_text("a.com."))
        before = len(writer)
        writer.write_name(Name.from_text("a.com."), compress=False)
        assert len(writer) == before * 2

    def test_reserve_and_patch(self):
        writer = WireWriter()
        offset = writer.reserve_u16()
        writer.write_bytes(b"xyz")
        writer.patch_u16(offset, 3)
        assert writer.getvalue() == b"\x00\x03xyz"


class TestReader:
    def test_read_integers(self):
        reader = WireReader(b"\xab\x12\x34\xde\xad\xbe\xef")
        assert reader.read_u8() == 0xAB
        assert reader.read_u16() == 0x1234
        assert reader.read_u32() == 0xDEADBEEF

    def test_read_past_end(self):
        reader = WireReader(b"\x01")
        with pytest.raises(WireError):
            reader.read_u16()

    def test_name_round_trip(self):
        writer = WireWriter()
        writer.write_name(Name.from_text("www.example.com."))
        reader = WireReader(writer.getvalue())
        assert reader.read_name() == Name.from_text("www.example.com.")

    def test_compressed_name_round_trip(self):
        writer = WireWriter()
        writer.write_name(Name.from_text("www.example.com."))
        writer.write_name(Name.from_text("mail.example.com."))
        reader = WireReader(writer.getvalue())
        assert reader.read_name() == Name.from_text("www.example.com.")
        assert reader.read_name() == Name.from_text("mail.example.com.")

    def test_forward_pointer_rejected(self):
        # Pointer to offset 4 from offset 0 (forward) is invalid.
        data = b"\xc0\x04\x00\x00\x01a\x00"
        with pytest.raises((BadPointer, WireError)):
            WireReader(data).read_name()

    def test_pointer_loop_rejected(self):
        # offset 0: pointer to 2; offset 2: pointer back to 0 — but forward
        # pointers are rejected first; craft a self-loop at offset 2.
        data = b"\x01a\xc0\x02"
        reader = WireReader(data, offset=2)
        with pytest.raises((BadPointer, WireError)):
            reader.read_name()

    def test_truncated_label(self):
        with pytest.raises(WireError):
            WireReader(b"\x05ab").read_name()

    def test_reserved_label_type(self):
        with pytest.raises(WireError):
            WireReader(b"\x80a").read_name()

    def test_seek_bounds(self):
        reader = WireReader(b"abc")
        with pytest.raises(WireError):
            reader.seek(10)
