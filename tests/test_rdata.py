"""Unit tests for rdata types (wire + presentation codecs)."""

import pytest

from repro.dnscore import rdtypes
from repro.dnscore.names import Name
from repro.dnscore.rdata import (
    AAAARdata,
    ARdata,
    CNAMERdata,
    DNSKEYRdata,
    DSRdata,
    GenericRdata,
    HTTPSRdata,
    NSRdata,
    RdataError,
    RRSIGRdata,
    SOARdata,
    SVCBRdata,
    TXTRdata,
    rdata_from_text,
    rdata_from_wire,
)
from repro.dnscore.wire import WireReader, WireWriter
from repro.svcb.params import Alpn, SvcParams


def round_trip(rdata):
    wire = rdata.wire_bytes()
    parsed = rdata_from_wire(rdata.rdtype, WireReader(wire), len(wire))
    assert parsed == rdata
    reparsed = rdata_from_text(rdata.rdtype, rdata.to_text())
    assert reparsed == rdata
    return parsed


class TestAddressRecords:
    def test_a_round_trip(self):
        round_trip(ARdata("192.0.2.1"))

    def test_a_wire_is_4_bytes(self):
        assert ARdata("1.2.3.4").wire_bytes() == b"\x01\x02\x03\x04"

    def test_a_bad_length(self):
        with pytest.raises(RdataError):
            rdata_from_wire(rdtypes.A, WireReader(b"\x01\x02"), 2)

    def test_aaaa_round_trip(self):
        round_trip(AAAARdata("2606:4700::1"))

    def test_aaaa_normalization(self):
        assert AAAARdata("2606:4700:0::1").address == "2606:4700::1"


class TestNameRecords:
    def test_cname_round_trip(self):
        round_trip(CNAMERdata(Name.from_text("target.example.")))

    def test_ns_round_trip(self):
        round_trip(NSRdata(Name.from_text("ns1.example.")))

    def test_soa_round_trip(self):
        round_trip(
            SOARdata(
                Name.from_text("ns1.example."),
                Name.from_text("hostmaster.example."),
                2024010101,
            )
        )

    def test_soa_field_count(self):
        with pytest.raises(RdataError):
            SOARdata.from_text("ns1.example. hostmaster.example. 1 2 3")


class TestTxt:
    def test_round_trip(self):
        round_trip(TXTRdata((b"hello world",)))

    def test_multiple_strings(self):
        rdata = TXTRdata((b"a", b"b"))
        wire = rdata.wire_bytes()
        assert wire == b"\x01a\x01b"

    def test_string_too_long(self):
        with pytest.raises(RdataError):
            TXTRdata((b"x" * 256,))


class TestDnssecRecords:
    def test_dnskey_round_trip(self):
        round_trip(DNSKEYRdata(257, 3, 253, b"\x01" * 32))

    def test_dnskey_key_tag_stable(self):
        key = DNSKEYRdata(256, 3, 253, b"\x02" * 32)
        assert key.key_tag() == key.key_tag()

    def test_dnskey_ksk_flag(self):
        assert DNSKEYRdata(257, 3, 253, b"k").is_ksk()
        assert not DNSKEYRdata(256, 3, 253, b"k").is_ksk()

    def test_ds_round_trip(self):
        round_trip(DSRdata(12345, 253, 2, bytes(range(32))))

    def test_rrsig_round_trip(self):
        round_trip(
            RRSIGRdata(
                type_covered=rdtypes.HTTPS,
                algorithm=253,
                labels=2,
                original_ttl=300,
                expiration=2_000_000,
                inception=1_000_000,
                key_tag=4242,
                signer=Name.from_text("example.com."),
                signature=b"\xaa" * 32,
            )
        )

    def test_rrsig_signer_uncompressed(self):
        rrsig = RRSIGRdata(1, 253, 2, 300, 2, 1, 7, Name.from_text("example.com."), b"s")
        writer = WireWriter()
        writer.write_name(Name.from_text("example.com."))
        before = len(writer)
        rrsig.to_wire(writer)
        # If the signer name were compressed, the rdata would shrink by >10.
        assert len(writer) - before >= 18 + len(Name.from_text("example.com.").to_wire())


class TestHttpsRecord:
    def test_service_mode_round_trip(self):
        params = SvcParams([Alpn(["h2", "h3"])])
        round_trip(HTTPSRdata(1, Name.root(), params))

    def test_alias_mode_round_trip(self):
        round_trip(HTTPSRdata(0, Name.from_text("cdn.example.")))

    def test_alias_mode_with_params_rejected(self):
        with pytest.raises(RdataError):
            HTTPSRdata(0, Name.root(), SvcParams([Alpn(["h2"])]))

    def test_mode_properties(self):
        assert HTTPSRdata(0, Name.root()).is_alias_mode
        assert not HTTPSRdata(0, Name.root()).is_service_mode
        assert HTTPSRdata(1, Name.root()).is_service_mode
        assert not HTTPSRdata(1, Name.root()).is_alias_mode

    def test_effective_target_dot(self):
        owner = Name.from_text("a.com.")
        record = HTTPSRdata(1, Name.root())
        assert record.effective_target(owner) == owner

    def test_effective_target_explicit(self):
        target = Name.from_text("pool.a.com.")
        record = HTTPSRdata(1, target)
        assert record.effective_target(Name.from_text("a.com.")) == target

    def test_from_text_cloudflare_default(self):
        rdata = rdata_from_text(
            rdtypes.HTTPS, "1 . alpn=h2,h3 ipv4hint=104.16.1.1 ipv6hint=2606:4700::1"
        )
        assert rdata.priority == 1
        assert rdata.params.alpn == ("h2", "h3")
        assert rdata.params.ipv4hint == ("104.16.1.1",)

    def test_text_render(self):
        rdata = rdata_from_text(rdtypes.HTTPS, "1 . alpn=h2")
        assert rdata.to_text() == "1 . alpn=h2"

    def test_priority_range(self):
        with pytest.raises(RdataError):
            HTTPSRdata(70000, Name.root())

    def test_svcb_same_format(self):
        rdata = rdata_from_text(rdtypes.SVCB, "1 . port=853")
        assert isinstance(rdata, SVCBRdata)
        assert rdata.params.port == 853

    def test_target_name_never_compressed(self):
        rdata = HTTPSRdata(1, Name.from_text("example.com."))
        writer = WireWriter()
        writer.write_name(Name.from_text("example.com."))
        before = len(writer)
        rdata.to_wire(writer)
        assert len(writer) - before == 2 + len(Name.from_text("example.com.").to_wire())

    def test_wire_length_mismatch_detected(self):
        rdata = HTTPSRdata(1, Name.root(), SvcParams([Alpn(["h2"])]))
        wire = rdata.wire_bytes()
        with pytest.raises((RdataError, Exception)):
            rdata_from_wire(rdtypes.HTTPS, WireReader(wire + b"\x00"), len(wire) + 1)


class TestGenericRdata:
    def test_unknown_type_round_trips(self):
        reader = WireReader(b"\x01\x02\x03")
        rdata = rdata_from_wire(999, reader, 3)
        assert isinstance(rdata, GenericRdata)
        assert rdata.data == b"\x01\x02\x03"

    def test_rfc3597_text(self):
        rdata = GenericRdata(999, b"\x01\x02")
        assert rdata.to_text() == "\\# 2 0102"
