"""Tests for the TLS/web-server simulation."""

import pytest

from repro.browser.tls import (
    Certificate,
    ClientHello,
    WebServer,
    seal_inner_hello,
)
from repro.ech.config import ECHConfigList
from repro.ech.keys import ECHKeyManager


def make_server(**kwargs):
    defaults = dict(
        name="web",
        certificate=Certificate(("a.example",)),
        alpn=("h2", "http/1.1"),
    )
    defaults.update(kwargs)
    return WebServer(**defaults)


class TestCertificate:
    def test_exact_match(self):
        cert = Certificate(("a.example",))
        assert cert.covers("a.example")
        assert cert.covers("A.EXAMPLE.")
        assert not cert.covers("b.example")

    def test_wildcard(self):
        cert = Certificate(("*.example",))
        assert cert.covers("a.example")
        assert not cert.covers("example")


class TestPlainHandshake:
    def test_success(self):
        server = make_server()
        result = server.handle_connection(ClientHello("a.example", ("h2",)))
        assert result.connected
        assert result.alpn == "h2"
        assert result.cert_valid_for_sni

    def test_cert_mismatch(self):
        server = make_server()
        result = server.handle_connection(ClientHello("other.example", ("h2",)))
        assert not result.connected
        assert result.error == "certificate_name_mismatch"

    def test_alpn_negotiation_order(self):
        server = make_server(alpn=("h3", "h2"))
        result = server.handle_connection(ClientHello("a.example", ("h2", "h3")))
        assert result.alpn == "h2"  # client preference wins

    def test_no_common_alpn(self):
        server = make_server(alpn=("h3",))
        result = server.handle_connection(ClientHello("a.example", ("h2",)))
        assert not result.connected
        assert result.error == "no_application_protocol"

    def test_empty_client_alpn(self):
        server = make_server()
        result = server.handle_connection(ClientHello("a.example", ()))
        assert result.connected
        assert result.alpn == "h2"


class TestEchHandshake:
    def setup_method(self):
        self.km = ECHKeyManager("cover.example", seed=b"t")
        self.wire = self.km.published_wire(0)
        self.keys = self.km.active_keypairs(0)

    def seal(self, inner="a.example"):
        sealed = seal_inner_hello(self.wire, inner)
        assert sealed is not None
        return sealed

    def test_ech_accepted(self):
        server = make_server(
            certificate=Certificate(("a.example", "cover.example")),
            ech_keypairs=self.keys,
        )
        payload, config_id, public_name = self.seal()
        result = server.handle_connection(
            ClientHello(public_name, ("h2",), ech_payload=payload, ech_config_id=config_id)
        )
        assert result.connected
        assert result.ech_accepted
        assert result.sni_used == "a.example"

    def test_ech_wrong_key_rejected_with_retry(self):
        stale_km = ECHKeyManager("cover.example", seed=b"other")
        payload, config_id, public_name = seal_inner_hello(stale_km.published_wire(0), "a.example")
        server = make_server(
            certificate=Certificate(("a.example", "cover.example")),
            ech_keypairs=self.keys,
            ech_retry_wire=self.wire,
        )
        result = server.handle_connection(
            ClientHello(public_name, ("h2",), ech_payload=payload, ech_config_id=config_id)
        )
        assert not result.ech_accepted
        assert result.retry_configs == self.wire

    def test_retry_disabled(self):
        stale_km = ECHKeyManager("cover.example", seed=b"other")
        payload, _cid, public_name = seal_inner_hello(stale_km.published_wire(0), "a.example")
        server = make_server(
            certificate=Certificate(("a.example", "cover.example")),
            ech_keypairs=self.keys,
            ech_retry_wire=self.wire,
            retry_enabled=False,
        )
        result = server.handle_connection(
            ClientHello(public_name, ("h2",), ech_payload=payload)
        )
        assert result.retry_configs is None

    def test_server_without_keys_ignores_ech(self):
        server = make_server(certificate=Certificate(("a.example", "cover.example")))
        payload, _cid, public_name = self.seal()
        result = server.handle_connection(
            ClientHello(public_name, ("h2",), ech_payload=payload)
        )
        assert result.ech_offered
        assert not result.ech_accepted
        assert result.connected  # outer handshake as cover.example

    def test_split_mode_forwarding(self):
        backend = make_server(name="backend", certificate=Certificate(("a.example",)))
        facing = make_server(
            name="facing",
            certificate=Certificate(("cover.example",)),
            ech_keypairs=self.keys,
            backends={"a.example": backend},
        )
        payload, config_id, public_name = self.seal()
        result = facing.handle_connection(
            ClientHello(public_name, ("h2",), ech_payload=payload, ech_config_id=config_id)
        )
        assert result.connected
        assert result.ech_accepted
        assert result.served_by == "backend"

    def test_malformed_config_list(self):
        assert seal_inner_hello(b"\x00\x04junk", "a.example") is None

    def test_handshake_log(self):
        server = make_server()
        server.handle_connection(ClientHello("a.example", ("h2",)))
        assert len(server.handshake_log) == 1
