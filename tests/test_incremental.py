"""Tests for incremental dataset maintenance (the paper's longstanding-
framework mode)."""

import datetime

import pytest

from repro.scanner import Dataset, run_campaign
from repro.scanner.incremental import (
    DatasetMergeError,
    continuation_window,
    coverage_gaps,
    merge_datasets,
)
from repro.simnet import SimConfig, World, timeline


@pytest.fixture(scope="module")
def slices():
    """Two consecutive campaign slices over the same world config."""
    config = SimConfig(population=250)
    boundary = datetime.date(2023, 7, 10)
    first = run_campaign(
        World(config), day_step=14, end=boundary,
        with_ech_hourly=False, with_dnssec_snapshot=False,
    )
    second = run_campaign(
        World(config), day_step=14,
        start=boundary + datetime.timedelta(days=14),
        end=datetime.date(2023, 10, 30),
        with_ech_hourly=False, with_dnssec_snapshot=False,
    )
    return first, second


class TestMerge:
    def test_merge_concatenates_days(self, slices):
        first, second = slices
        merged = merge_datasets([first, second])
        assert merged.days() == sorted(first.days() + second.days())

    def test_merge_preserves_observations(self, slices):
        first, second = slices
        merged = merge_datasets([first, second])
        sample_day = first.days()[0]
        assert merged.snapshot(sample_day).apex_https_count == first.snapshot(sample_day).apex_https_count

    def test_overlap_rejected(self, slices):
        first, _second = slices
        with pytest.raises(DatasetMergeError):
            merge_datasets([first, first])

    def test_overlap_allowed_when_asked(self, slices):
        first, _second = slices
        merged = merge_datasets([first, first], allow_overlap=True)
        assert merged.days() == first.days()

    def test_world_mismatch_rejected(self, slices):
        first, _second = slices
        alien = run_campaign(
            World(SimConfig(population=120)), day_step=60,
            end=datetime.date(2023, 6, 1),
            with_ech_hourly=False, with_dnssec_snapshot=False,
        )
        with pytest.raises(DatasetMergeError):
            merge_datasets([first, alien])

    def test_empty_rejected(self):
        with pytest.raises(DatasetMergeError):
            merge_datasets([])

    def test_analyses_run_on_merged(self, slices):
        from repro.analysis import adoption

        merged = merge_datasets(list(slices))
        series = adoption.dynamic_adoption(merged)
        assert len(series["apex"].points) == len(merged.days())


class TestEchOverlapDedupe:
    """Regression: allow_overlap merges used to concatenate hourly ECH
    rows, so a re-scanned slice doubled every sighting and skewed the
    Fig. 13/14 shares."""

    @staticmethod
    def _dataset_with_ech(rows):
        from repro.scanner.records import EchObservation

        dataset = Dataset(250, "imc2024-dnshttps", 14)
        dataset.ech_observations = [EchObservation(*row) for row in rows]
        return dataset

    def test_rescan_does_not_duplicate_rows(self):
        first = self._dataset_with_ech([("a.com", 10, b"d1", "cf.com", 1)])
        rescan = self._dataset_with_ech([("a.com", 10, b"d1", "cf.com", 1)])
        merged = merge_datasets([first, rescan], allow_overlap=True)
        assert len(merged.ech_observations) == 1

    def test_later_slice_wins_on_same_key(self):
        first = self._dataset_with_ech([("a.com", 10, b"d1", "stale.example", 1)])
        rescan = self._dataset_with_ech([("a.com", 10, b"d1", "fresh.example", 2)])
        merged = merge_datasets([first, rescan], allow_overlap=True)
        assert len(merged.ech_observations) == 1
        assert merged.ech_observations[0].public_name == "fresh.example"
        assert merged.ech_observations[0].config_id == 2

    def test_distinct_sightings_all_kept(self):
        first = self._dataset_with_ech(
            [("a.com", 10, b"d1", "cf.com", 1), ("a.com", 11, b"d2", "cf.com", 2)]
        )
        second = self._dataset_with_ech([("b.com", 10, b"d1", "cf.com", 1)])
        merged = merge_datasets([first, second], allow_overlap=True)
        assert len(merged.ech_observations) == 3

    def test_disjoint_slices_unchanged(self, slices):
        first, second = slices
        merged = merge_datasets([first, second])
        assert merged.ech_observations == (
            first.ech_observations + second.ech_observations
        )


class TestRunStatsRollUp:
    """Regression: merge_datasets used to silently drop run_stats, so a
    long collection reported no transport/coalescing totals at all."""

    @staticmethod
    def _dataset_with_stats(stats):
        from repro.scanner import RunStats

        dataset = Dataset(250, "imc2024-dnshttps", 14)
        dataset.run_stats = None if stats is None else RunStats(**stats)
        return dataset

    def test_stats_sum_across_slices(self):
        merged = merge_datasets([
            self._dataset_with_stats({"dns_queries": 10, "tcp_connects": 2}),
            self._dataset_with_stats({"dns_queries": 5, "coalesced_queries": 3}),
        ])
        assert merged.run_stats.dns_queries == 15
        assert merged.run_stats.tcp_connects == 2
        assert merged.run_stats.coalesced_queries == 3

    def test_slices_without_stats_are_tolerated(self):
        merged = merge_datasets([
            self._dataset_with_stats(None),
            self._dataset_with_stats({"dns_queries": 7}),
            self._dataset_with_stats(None),
        ])
        assert merged.run_stats.dns_queries == 7

    def test_no_stats_anywhere_stays_none(self):
        merged = merge_datasets([
            self._dataset_with_stats(None), self._dataset_with_stats(None)
        ])
        assert merged.run_stats is None

    def test_live_slices_roll_up(self, slices):
        first, second = slices
        merged = merge_datasets([first, second])
        assert merged.run_stats is not None
        assert (
            merged.run_stats.dns_queries
            == first.run_stats.dns_queries + second.run_stats.dns_queries
        )


class TestContinuation:
    def test_window_after_last_day(self, slices):
        first, _second = slices
        nxt = continuation_window(first)
        assert nxt == first.days()[-1] + datetime.timedelta(days=14)

    def test_gapless_coverage(self, slices):
        first, _second = slices
        assert coverage_gaps(first) == []

    def test_detects_gap(self, slices):
        first, second = slices
        merged = merge_datasets([first, second])
        # The slice boundary skips one cadence slot.
        gaps = coverage_gaps(merged, expected_step=14)
        assert len(gaps) >= 0  # structural sanity; precise gap below
        holey = merge_datasets([first, second])
        del holey.snapshots[holey.days()[1]]
        assert holey.days()[0] + datetime.timedelta(days=14) in coverage_gaps(
            holey, expected_step=14
        )
