"""Unit + integration tests for authoritative and recursive resolution."""

import pytest

from repro.dnscore import rdtypes
from repro.dnscore.message import Message
from repro.dnscore.names import Name
from repro.dnssec.validation import ChainValidator
from repro.resolver.authoritative import AuthoritativeServer
from repro.resolver.clock import SimClock
from repro.resolver.network import HostUnreachable, Network, PortClosed
from repro.resolver.recursive import RecursiveResolver
from repro.resolver.stub import ResolverFrontend, StubResolver
from repro.zones.tree import ZoneTree
from repro.zones.zone import Zone

NOW = 1_000_000


def build_internet(sign=False, wire_mode=False):
    """A tiny root → com → example.com internet on a fresh network."""
    network = Network(wire_mode=wire_mode)
    clock = SimClock(NOW)

    root = Zone(Name.root())
    root.ensure_soa(Name.from_text("a.root-servers.net."))
    root.delegate(Name.from_text("com."), [Name.from_text("ns.tld.")])
    root.add_record("ns.tld.", "A", "192.5.6.30")

    com = Zone(Name.from_text("com."))
    com.ensure_soa(Name.from_text("ns.tld."))
    com.delegate(Name.from_text("example.com."), [Name.from_text("ns1.example.com.")])
    com.add_record("ns1.example.com.", "A", "10.0.0.1")

    example = Zone(Name.from_text("example.com."))
    example.ensure_soa(Name.from_text("ns1.example.com."))
    example.add_record("example.com.", "HTTPS", "1 . alpn=h2,h3")
    example.add_record("example.com.", "A", "10.0.0.9")
    example.add_record("www.example.com.", "CNAME", "example.com.")
    example.add_record("alias.example.com.", "CNAME", "target.elsewhere.com.")
    example.add_record("ns1.example.com.", "A", "10.0.0.1")

    elsewhere = Zone(Name.from_text("elsewhere.com."))
    elsewhere.ensure_soa()
    elsewhere.add_record("target.elsewhere.com.", "A", "10.0.0.77")
    com.delegate(Name.from_text("elsewhere.com."), [Name.from_text("ns1.elsewhere.com.")])
    com.add_record("ns1.elsewhere.com.", "A", "10.0.0.2")

    tree = ZoneTree()
    for zone in (root, com, example, elsewhere):
        tree.add_zone(zone)

    if sign:
        for zone in (example, elsewhere, com, root):
            zone.sign(NOW)
        tree.upload_ds(Name.from_text("com."), NOW)
        tree.upload_ds(Name.from_text("example.com."), NOW)
        tree.upload_ds(Name.from_text("elsewhere.com."), NOW)

    root_server = AuthoritativeServer("root")
    root_server.tree.add_zone(root)
    tld_server = AuthoritativeServer("tld")
    tld_server.tree.add_zone(com)
    example_server = AuthoritativeServer("example")
    example_server.tree.add_zone(example)
    elsewhere_server = AuthoritativeServer("elsewhere")
    elsewhere_server.tree.add_zone(elsewhere)

    network.register_dns("198.41.0.4", root_server)
    network.register_dns("192.5.6.30", tld_server)
    network.register_dns("10.0.0.1", example_server)
    network.register_dns("10.0.0.2", elsewhere_server)

    validator = ChainValidator(tree) if sign else None
    resolver = RecursiveResolver("test", network, ["198.41.0.4"], clock, validator=validator)
    return network, clock, resolver, tree


class TestAuthoritative:
    def setup_method(self):
        self.network, self.clock, self.resolver, self.tree = build_internet()
        self.example = self.network.dns_server_at("10.0.0.1")

    def ask(self, server, name, rdtype):
        return server.handle_query(Message.make_query(name, rdtype, 1))

    def test_positive_answer_is_authoritative(self):
        response = self.ask(self.example, "example.com.", rdtypes.HTTPS)
        assert response.authoritative
        assert response.get_answer("example.com.", rdtypes.HTTPS) is not None

    def test_nxdomain_with_soa(self):
        response = self.ask(self.example, "nope.example.com.", rdtypes.A)
        assert response.rcode == rdtypes.NXDOMAIN
        assert any(rr.rdtype == rdtypes.SOA for rr in response.authority)

    def test_nodata(self):
        response = self.ask(self.example, "example.com.", rdtypes.TXT)
        assert response.rcode == rdtypes.NOERROR
        assert not response.answers
        assert any(rr.rdtype == rdtypes.SOA for rr in response.authority)

    def test_refused_out_of_zone(self):
        response = self.ask(self.example, "other.org.", rdtypes.A)
        assert response.rcode == rdtypes.REFUSED

    def test_referral_with_glue(self):
        tld = self.network.dns_server_at("192.5.6.30")
        response = self.ask(tld, "example.com.", rdtypes.HTTPS)
        assert not response.answers
        ns = [rr for rr in response.authority if rr.rdtype == rdtypes.NS]
        assert ns and ns[0].name == Name.from_text("example.com.")
        assert any(rr.rdtype == rdtypes.A for rr in response.additional)

    def test_in_zone_cname_chased_by_server(self):
        response = self.ask(self.example, "www.example.com.", rdtypes.A)
        assert response.get_answer("www.example.com.", rdtypes.CNAME) is not None
        assert response.get_answer("example.com.", rdtypes.A) is not None

    def test_out_of_zone_cname_not_chased(self):
        response = self.ask(self.example, "alias.example.com.", rdtypes.A)
        assert response.get_answer("alias.example.com.", rdtypes.CNAME) is not None
        assert response.get_answer("target.elsewhere.com.", rdtypes.A) is None

    def test_unsupported_rdtype_empty_noerror(self):
        self.example.unsupported_rdtypes = {rdtypes.HTTPS}
        response = self.ask(self.example, "example.com.", rdtypes.HTTPS)
        assert response.rcode == rdtypes.NOERROR
        assert not response.answers
        # A queries still answered.
        response = self.ask(self.example, "example.com.", rdtypes.A)
        assert response.answers


class TestRecursive:
    def test_full_iteration(self):
        _network, _clock, resolver, _tree = build_internet()
        response = resolver.resolve("example.com.", rdtypes.HTTPS)
        assert response.rcode == rdtypes.NOERROR
        assert response.get_answer("example.com.", rdtypes.HTTPS) is not None
        assert response.recursion_available

    def test_cross_zone_cname_chase(self):
        _network, _clock, resolver, _tree = build_internet()
        response = resolver.resolve("alias.example.com.", rdtypes.A)
        assert response.get_answer("alias.example.com.", rdtypes.CNAME) is not None
        assert response.get_answer("target.elsewhere.com.", rdtypes.A) is not None

    def test_caching_avoids_requeries(self):
        network, _clock, resolver, _tree = build_internet()
        resolver.resolve("example.com.", rdtypes.HTTPS)
        count = network.dns_query_count
        resolver.resolve("example.com.", rdtypes.HTTPS)
        assert network.dns_query_count == count

    def test_cache_expires_with_ttl(self):
        network, clock, resolver, _tree = build_internet()
        resolver.resolve("example.com.", rdtypes.HTTPS)
        count = network.dns_query_count
        clock.advance(301)
        resolver.resolve("example.com.", rdtypes.HTTPS)
        assert network.dns_query_count > count

    def test_nxdomain_propagates(self):
        _network, _clock, resolver, _tree = build_internet()
        response = resolver.resolve("missing.example.com.", rdtypes.A)
        assert response.rcode == rdtypes.NXDOMAIN

    def test_unreachable_everything_servfail(self):
        network, _clock, resolver, _tree = build_internet()
        network.set_unreachable("10.0.0.1")
        response = resolver.resolve("example.com.", rdtypes.HTTPS)
        assert response.rcode == rdtypes.SERVFAIL

    def test_ad_bit_on_secure_chain(self):
        _network, _clock, resolver, _tree = build_internet(sign=True)
        response = resolver.resolve("example.com.", rdtypes.HTTPS)
        assert response.authenticated_data
        assert response.get_answer("example.com.", rdtypes.RRSIG) is not None

    def test_no_ad_without_validator(self):
        _network, _clock, resolver, _tree = build_internet(sign=False)
        response = resolver.resolve("example.com.", rdtypes.HTTPS)
        assert not response.authenticated_data

    def test_servfail_on_bogus(self):
        _network, _clock, resolver, tree = build_internet(sign=True)
        zone = tree.get_zone(Name.from_text("example.com."))
        zone.corrupt_signature(Name.from_text("example.com."), rdtypes.HTTPS)
        response = resolver.resolve("example.com.", rdtypes.HTTPS)
        assert response.rcode == rdtypes.SERVFAIL

    def test_wire_mode_end_to_end(self):
        _network, _clock, resolver, _tree = build_internet(wire_mode=True)
        response = resolver.resolve("example.com.", rdtypes.HTTPS)
        assert response.get_answer("example.com.", rdtypes.HTTPS) is not None

    def test_ipv6_only_glue_followed(self):
        """Regression: referral glue harvesting only accepted A records,
        so an IPv6-only name server looked glueless and its zone became
        unreachable (its NS name does not resolve out-of-bailiwick)."""
        network, _clock, resolver, _tree = build_internet()
        com_server = network.dns_server_at("192.5.6.30")
        com = com_server.tree.zone_for(Name.from_text("v6only.com."))
        assert com is not None  # the com. zone serves the new delegation
        com.delegate(Name.from_text("v6only.com."), [Name.from_text("ns1.v6only.com.")])
        com.add_record("ns1.v6only.com.", "AAAA", "2001:db8::53")

        v6zone = Zone(Name.from_text("v6only.com."))
        v6zone.ensure_soa()
        v6zone.add_record("v6only.com.", "A", "10.0.0.99")
        v6zone.add_record("ns1.v6only.com.", "AAAA", "2001:db8::53")
        v6server = AuthoritativeServer("v6only")
        v6server.tree.add_zone(v6zone)
        network.register_dns("2001:db8::53", v6server)

        response = resolver.resolve("v6only.com.", rdtypes.A)
        assert response.rcode == rdtypes.NOERROR
        assert response.get_answer("v6only.com.", rdtypes.A) is not None

    def test_ns_selection_deterministic_within_day(self):
        network, _clock, resolver, _tree = build_internet()
        order1 = resolver._select_server(["1.1.1.1", "2.2.2.2", "3.3.3.3"], Name.from_text("a.com."))
        order2 = resolver._select_server(["1.1.1.1", "2.2.2.2", "3.3.3.3"], Name.from_text("a.com."))
        assert order1 == order2

    def test_ns_selection_varies_by_name(self):
        _network, _clock, resolver, _tree = build_internet()
        candidates = [f"10.0.0.{i}" for i in range(8)]
        orders = {
            tuple(resolver._select_server(candidates, Name.from_text(f"d{i}.com.")))
            for i in range(12)
        }
        assert len(orders) > 1


class TestStub:
    def test_failover_to_backup(self):
        network, clock, primary, tree = build_internet()
        # Break the primary by giving it no usable root hints.
        broken = RecursiveResolver("broken", network, ["203.0.113.99"], clock)
        stub = StubResolver([broken, primary])
        response = stub.query_https("example.com.")
        assert response.rcode == rdtypes.NOERROR

    def test_stub_needs_a_resolver(self):
        with pytest.raises(ValueError):
            StubResolver([])

    def test_frontend_adapts_queries(self):
        network, _clock, resolver, _tree = build_internet()
        network.register_dns("8.8.8.8", ResolverFrontend(resolver))
        query = Message.make_query("example.com.", rdtypes.HTTPS, 77)
        response = network.send_dns_query("8.8.8.8", query)
        assert response.msg_id == 77
        assert response.get_answer("example.com.", rdtypes.HTTPS) is not None


class TestNetwork:
    def test_unreachable_ip(self):
        network = Network()
        network.set_unreachable("1.2.3.4")
        with pytest.raises(HostUnreachable):
            network.send_dns_query("1.2.3.4", Message.make_query("a.com.", 1, 1))
        network.set_unreachable("1.2.3.4", False)
        assert network.is_reachable("1.2.3.4")

    def test_no_server(self):
        network = Network()
        with pytest.raises(HostUnreachable):
            network.send_dns_query("9.9.9.9", Message.make_query("a.com.", 1, 1))

    def test_tcp_port_closed(self):
        network = Network()
        with pytest.raises(PortClosed):
            network.connect_tcp("127.0.0.1", 443)

    def test_tcp_register_and_connect(self):
        network = Network()
        sentinel = object()
        network.register_tcp("1.1.1.1", 443, sentinel)
        assert network.connect_tcp("1.1.1.1", 443) is sentinel
        network.unregister_tcp("1.1.1.1", 443)
        with pytest.raises(PortClosed):
            network.connect_tcp("1.1.1.1", 443)
