"""Property-based tests (hypothesis) for codec round-trips and core
invariants."""

import string

from hypothesis import given, settings, strategies as st

from repro.dnscore import rdtypes
from repro.dnscore.message import Message, Question
from repro.dnscore.names import Name
from repro.dnscore.rdata import ARdata, HTTPSRdata, rdata_from_wire
from repro.dnscore.rrset import RRset
from repro.dnscore.wire import WireReader, WireWriter
from repro.ech.config import ECHConfig, ECHConfigList
from repro.svcb.params import (
    Alpn,
    Ipv4Hint,
    Ipv6Hint,
    NoDefaultAlpn,
    Port,
    SvcParams,
)

# -- strategies --------------------------------------------------------------

label_st = st.binary(min_size=1, max_size=20).filter(lambda b: b"." not in b and b"\\" not in b)
hostname_label_st = st.text(
    alphabet=string.ascii_lowercase + string.digits + "-", min_size=1, max_size=15
).filter(lambda s: not s.startswith("-"))


@st.composite
def names(draw):
    count = draw(st.integers(min_value=0, max_value=5))
    labels = [draw(label_st) for _ in range(count)]
    return Name(labels + [b""])


@st.composite
def hostnames(draw):
    count = draw(st.integers(min_value=1, max_value=4))
    return Name.from_text(".".join(draw(hostname_label_st) for _ in range(count)) + ".")


ipv4_st = st.builds(
    lambda a, b, c, d: f"{a}.{b}.{c}.{d}",
    *[st.integers(0, 255) for _ in range(4)],
)
alpn_st = st.lists(
    st.text(alphabet=string.ascii_lowercase + string.digits + "/-.", min_size=1, max_size=8),
    min_size=1,
    max_size=4,
)


@st.composite
def svcparams(draw):
    params = []
    if draw(st.booleans()):
        params.append(Alpn(draw(alpn_st)))
        if draw(st.booleans()):
            params.append(NoDefaultAlpn())
    if draw(st.booleans()):
        params.append(Port(draw(st.integers(0, 65535))))
    if draw(st.booleans()):
        params.append(Ipv4Hint(draw(st.lists(ipv4_st, min_size=1, max_size=3))))
    return SvcParams(params)


@st.composite
def https_rdatas(draw):
    priority = draw(st.integers(0, 65535))
    target = draw(hostnames() | st.just(Name.root()))
    params = draw(svcparams()) if priority else SvcParams()
    return HTTPSRdata(priority, target, params)


# -- name properties ----------------------------------------------------------

@given(names())
def test_name_text_round_trip(name):
    assert Name.from_text(name.to_text()) == name


@given(names())
def test_name_wire_round_trip(name):
    writer = WireWriter()
    writer.write_name(name)
    assert WireReader(writer.getvalue()).read_name() == name


@given(names(), names())
def test_name_equality_consistent_with_hash(a, b):
    if a == b:
        assert hash(a) == hash(b)


@given(names(), names())
def test_subdomain_antisymmetry(a, b):
    if a.is_subdomain_of(b) and b.is_subdomain_of(a):
        assert a == b


@given(st.lists(names(), min_size=2, max_size=6))
def test_compression_round_trip_many_names(name_list):
    writer = WireWriter()
    for name in name_list:
        writer.write_name(name)
    reader = WireReader(writer.getvalue())
    for name in name_list:
        assert reader.read_name() == name


# -- SvcParams properties -------------------------------------------------------

@given(svcparams())
def test_svcparams_wire_round_trip(params):
    assert SvcParams.from_wire(params.to_wire()) == params


@given(svcparams())
def test_svcparams_text_round_trip(params):
    assert SvcParams.from_text(params.to_text()) == params


@given(svcparams())
def test_svcparams_wire_keys_ascending(params):
    wire = params.to_wire()
    keys = []
    pos = 0
    while pos < len(wire):
        keys.append(int.from_bytes(wire[pos : pos + 2], "big"))
        length = int.from_bytes(wire[pos + 2 : pos + 4], "big")
        pos += 4 + length
    assert keys == sorted(keys)


@given(svcparams())
def test_effective_alpn_always_nonempty(params):
    assert len(params.effective_alpn()) >= 0  # never raises; tuple result
    assert isinstance(params.effective_alpn(), tuple)


# -- HTTPS rdata properties ---------------------------------------------------------

@given(https_rdatas())
def test_https_rdata_wire_round_trip(rdata):
    wire = rdata.wire_bytes()
    parsed = rdata_from_wire(rdtypes.HTTPS, WireReader(wire), len(wire))
    assert parsed == rdata


@given(https_rdatas())
def test_https_rdata_text_round_trip(rdata):
    from repro.dnscore.rdata import rdata_from_text

    assert rdata_from_text(rdtypes.HTTPS, rdata.to_text()) == rdata


@given(https_rdatas())
def test_https_mode_exclusive(rdata):
    assert rdata.is_alias_mode != rdata.is_service_mode


# -- message properties ----------------------------------------------------------------

@given(
    hostnames(),
    st.integers(0, 0xFFFF),
    st.lists(ipv4_st, min_size=1, max_size=4, unique=True),
)
def test_message_round_trip(name, msg_id, addresses):
    msg = Message(msg_id)
    msg.is_response = True
    msg.questions.append(Question(name, rdtypes.A))
    rrset = RRset(name, rdtypes.A, 300, [ARdata(ip) for ip in addresses])
    msg.answers.append(rrset)
    parsed = Message.from_wire(msg.to_wire())
    assert parsed.msg_id == msg_id
    assert parsed.get_answer(name, rdtypes.A) == rrset


@given(st.binary(max_size=64))
def test_message_parser_never_crashes_weirdly(data):
    """Arbitrary bytes either parse or raise a codec error — nothing else."""
    from repro.dnscore.names import NameError_
    from repro.dnscore.rdata import RdataError
    from repro.dnscore.wire import WireError
    from repro.svcb.params import SvcParamError

    try:
        Message.from_wire(data)
    except (WireError, NameError_, RdataError, SvcParamError, ValueError):
        pass


# -- RRset invariants ----------------------------------------------------------------------

@given(st.lists(ipv4_st, min_size=1, max_size=5, unique=True))
def test_rrset_canonical_order_deterministic(addresses):
    name = Name.from_text("x.example.")
    forward = RRset(name, rdtypes.A, 60, [ARdata(ip) for ip in addresses])
    backward = RRset(name, rdtypes.A, 60, [ARdata(ip) for ip in reversed(addresses)])
    assert [r.wire_bytes() for r in forward.canonical_rdata_order()] == [
        r.wire_bytes() for r in backward.canonical_rdata_order()
    ]
    assert forward == backward


@given(st.lists(ipv4_st, min_size=1, max_size=5))
def test_rrset_deduplicates(addresses):
    name = Name.from_text("x.example.")
    rrset = RRset(name, rdtypes.A, 60, [ARdata(ip) for ip in addresses + addresses])
    assert len(rrset) == len(set(addresses))


# -- ECH config properties ----------------------------------------------------------------

@st.composite
def ech_configs(draw):
    config_id = draw(st.integers(0, 255))
    key = draw(st.binary(min_size=16, max_size=48))
    public_name = draw(hostnames()).to_text(omit_final_dot=True)
    return ECHConfig(config_id, key, public_name)


@given(st.lists(ech_configs(), min_size=1, max_size=4))
def test_ech_config_list_round_trip(configs):
    config_list = ECHConfigList(configs)
    assert ECHConfigList.from_wire(config_list.to_wire()) == config_list


@given(st.binary(max_size=80))
def test_ech_parser_total(data):
    from repro.ech.config import try_parse_config_list

    result = try_parse_config_list(data)
    assert result is None or isinstance(result, ECHConfigList)


# -- zone-file properties ------------------------------------------------------------------

@st.composite
def simple_zones(draw):
    from repro.zones.zone import Zone

    apex = draw(hostnames())
    zone = Zone(apex, default_ttl=300)
    zone.ensure_soa()
    zone.add_record(apex.to_text(), "NS", "ns1." + apex.to_text())
    for ip in draw(st.lists(ipv4_st, min_size=1, max_size=3, unique=True)):
        zone.add_record(apex.to_text(), "A", ip)
    if draw(st.booleans()):
        params = draw(svcparams())
        from repro.dnscore.rdata import HTTPSRdata
        from repro.dnscore.rrset import RRset as _RRset

        zone.add_rrset(
            _RRset(apex, rdtypes.HTTPS, 300, [HTTPSRdata(1, Name.root(), params)])
        )
    return zone


@given(simple_zones())
@settings(max_examples=30)
def test_zone_file_round_trip(zone):
    from repro.zones.zonefile import parse_zone_file, serialize_zone

    text = serialize_zone(zone)
    reparsed = parse_zone_file(text)
    assert reparsed.apex == zone.apex
    for rrset in zone.rrsets():
        assert reparsed.get_rrset(rrset.name, rrset.rdtype) == rrset


# -- DNSSEC properties ------------------------------------------------------------------------

@given(hostnames(), st.lists(ipv4_st, min_size=1, max_size=4, unique=True))
@settings(max_examples=25)
def test_sign_verify_round_trip(name, addresses):
    from repro.dnssec.keys import ZoneKey, verify_blob
    from repro.dnssec.signing import sign_rrset, signing_input

    key = ZoneKey.derive(name, "zsk")
    rrset = RRset(name, rdtypes.A, 300, [ARdata(ip) for ip in addresses])
    rrsig = sign_rrset(rrset, name, key, 1000)
    assert verify_blob(key.dnskey, signing_input(rrset, rrsig), rrsig.signature)
    # Tampering with any rdata breaks verification.
    tampered = RRset(name, rdtypes.A, 300, [ARdata("203.0.113.99")])
    assert not verify_blob(key.dnskey, signing_input(tampered, rrsig), rrsig.signature)
