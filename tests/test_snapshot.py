"""Tests for the world snapshot cache, the reuse registry, and RRSIG
memoisation.

The load-bearing property is *equivalence*: a world deserialized from a
snapshot, or checked back out of the registry after a reset, must drive
campaigns to datasets value-equal to a freshly built world's — across
the daily, post-merge NS, hourly ECH, and DNSSEC stages. Broken, stale,
or version-mismatched snapshots must be rejected loudly and rebuilt,
never served quietly. Signature memoisation must be invisible: byte-
identical RRSIGs whether the memo is cold, hot, or disabled.
"""

import datetime
import os
import pickle

import pytest

from repro.dnscore import rdtypes
from repro.dnscore.names import Name
from repro.dnscore.rdata import ARdata
from repro.dnscore.rrset import RRset
from repro.dnssec.keys import ZoneKeySet, verify_blob
from repro.dnssec.signing import SignatureMemo, sign_rrset, signing_input
from repro.scanner import ParallelCampaignRunner, run_campaign
from repro.simnet import (
    SimConfig,
    SnapshotError,
    World,
    WorldRegistry,
    load_world_snapshot,
    save_world_snapshot,
    snapshot_path,
    timeline,
    world_tag,
)
from repro.simnet import snapshot as snapshot_mod
from repro.simnet import world as world_mod

POPULATION = 150
CONFIG = SimConfig(population=POPULATION)

ECH_KWARGS = dict(
    day_step=7,
    start=datetime.date(2023, 7, 14),
    end=datetime.date(2023, 7, 31),
    ech_sample=5,
)
LATE_KWARGS = dict(
    day_step=14,
    start=datetime.date(2023, 12, 20),
    end=datetime.date(2024, 2, 5),
    with_ech_hourly=False,
)


# ---------------------------------------------------------------------------
# snapshot file format
# ---------------------------------------------------------------------------


class TestSnapshotFile:
    def test_round_trip_restores_the_world(self, tmp_path):
        path = save_world_snapshot(World(CONFIG), str(tmp_path))
        assert os.path.exists(path)
        world = load_world_snapshot(CONFIG, str(tmp_path))
        assert isinstance(world, World)
        assert world.config == CONFIG
        assert len(world.profiles) == POPULATION
        assert [p.name for p in world.profiles] == [
            p.name for p in World(CONFIG).profiles
        ]

    def test_missing_snapshot_rejected(self, tmp_path):
        with pytest.raises(SnapshotError, match="no snapshot"):
            load_world_snapshot(CONFIG, str(tmp_path))

    def test_corrupt_payload_rejected(self, tmp_path):
        path = save_world_snapshot(World(CONFIG), str(tmp_path))
        with open(path, "rb") as handle:
            record = pickle.load(handle)
        payload = bytearray(record["payload"])
        payload[len(payload) // 2] ^= 0xFF
        record["payload"] = bytes(payload)
        with open(path, "wb") as handle:
            pickle.dump(record, handle, protocol=4)
        with pytest.raises(SnapshotError, match="integrity"):
            load_world_snapshot(CONFIG, str(tmp_path))

    def test_truncated_file_rejected(self, tmp_path):
        path = save_world_snapshot(World(CONFIG), str(tmp_path))
        blob = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(blob[: len(blob) // 3])
        with pytest.raises(SnapshotError):
            load_world_snapshot(CONFIG, str(tmp_path))

    def test_version_mismatch_rejected(self, tmp_path):
        path = save_world_snapshot(World(CONFIG), str(tmp_path))
        with open(path, "rb") as handle:
            record = pickle.load(handle)
        record["version"] = snapshot_mod.SNAPSHOT_VERSION + 1
        with open(path, "wb") as handle:
            pickle.dump(record, handle, protocol=4)
        with pytest.raises(SnapshotError, match="version"):
            load_world_snapshot(CONFIG, str(tmp_path))

    def test_code_fingerprint_mismatch_rejected(self, tmp_path):
        """A snapshot written by different repro source code is stale
        even when the config tag and payload are intact."""
        path = save_world_snapshot(World(CONFIG), str(tmp_path))
        with open(path, "rb") as handle:
            record = pickle.load(handle)
        record["code"] = "0123456789abcdef"
        with open(path, "wb") as handle:
            pickle.dump(record, handle, protocol=4)
        with pytest.raises(SnapshotError, match="different repro code"):
            load_world_snapshot(CONFIG, str(tmp_path))

    def test_ensure_replaces_invalid_file_even_with_pooled_world(self, tmp_path):
        """ensure_world_snapshot must leave a *valid* file behind: a
        corrupt leftover is rewritten even when the registry pool can
        satisfy the checkout without touching the disk."""
        path = save_world_snapshot(World(CONFIG), str(tmp_path))
        with open(path, "wb") as handle:
            handle.write(b"garbage")
        snapshot_mod.checkin_world(World(CONFIG))  # pool has a world
        assert snapshot_mod.ensure_world_snapshot(CONFIG, str(tmp_path)) == path
        load_world_snapshot(CONFIG, str(tmp_path))  # valid again
        snapshot_mod.world_registry().clear()

    def test_foreign_object_rejected(self, tmp_path):
        path = snapshot_path(str(tmp_path), CONFIG)
        os.makedirs(str(tmp_path), exist_ok=True)
        with open(path, "wb") as handle:
            pickle.dump({"not": "a snapshot"}, handle)
        with pytest.raises(SnapshotError, match="not a world snapshot"):
            load_world_snapshot(CONFIG, str(tmp_path))

    def test_config_tag_mismatch_rejected(self, tmp_path):
        """A snapshot renamed (or copied) onto another config's path is
        caught by the tag recorded in the header."""
        other = SimConfig(population=POPULATION, seed="other-seed")
        source = save_world_snapshot(World(CONFIG), str(tmp_path))
        os.replace(source, snapshot_path(str(tmp_path), other))
        with pytest.raises(SnapshotError, match="different config"):
            load_world_snapshot(other, str(tmp_path))

    def test_tag_covers_every_config_field(self):
        assert world_tag(CONFIG) != world_tag(
            SimConfig(population=POPULATION, negative_ttl=61)
        )

    def test_checkout_rebuilds_and_rewrites_after_corruption(self, tmp_path):
        registry = WorldRegistry()
        path = save_world_snapshot(World(CONFIG), str(tmp_path))
        with open(path, "wb") as handle:
            handle.write(b"garbage")
        world = registry.checkout(CONFIG, str(tmp_path))
        assert registry.stats()["built"] == 1  # fell back to a fresh build
        assert registry.stats()["saved"] == 1  # and replaced the bad file
        assert len(world.profiles) == POPULATION
        load_world_snapshot(CONFIG, str(tmp_path))  # rewritten copy is valid


# ---------------------------------------------------------------------------
# equivalence: snapshot-loaded and registry-reused worlds
# ---------------------------------------------------------------------------


class TestEquivalence:
    @pytest.fixture(scope="class")
    def snapshot_dir(self, tmp_path_factory):
        directory = tmp_path_factory.mktemp("worlds")
        save_world_snapshot(World(CONFIG), str(directory))
        return str(directory)

    @pytest.fixture(scope="class")
    def ech_week_fresh(self):
        return run_campaign(World(CONFIG), **ECH_KWARGS)

    @pytest.fixture(scope="class")
    def late_window_fresh(self):
        return run_campaign(World(CONFIG), **LATE_KWARGS)

    def test_loaded_world_reproduces_ech_week(self, snapshot_dir, ech_week_fresh):
        """Daily + hourly-ECH stages on a deserialized world."""
        loaded = load_world_snapshot(CONFIG, snapshot_dir)
        dataset = run_campaign(loaded, **ECH_KWARGS)
        assert dataset.ech_observations, "window must exercise the hourly scan"
        assert dataset == ech_week_fresh

    def test_loaded_world_reproduces_late_window(self, snapshot_dir, late_window_fresh):
        """NS-IP, connectivity, and DNSSEC stages on a deserialized world."""
        loaded = load_world_snapshot(CONFIG, snapshot_dir)
        dataset = run_campaign(loaded, **LATE_KWARGS)
        assert dataset.dnssec_snapshot, "window must cover the DNSSEC snapshot"
        assert any(s.ns_observations for s in dataset.snapshots.values())
        assert dataset == late_window_fresh

    def test_pipeline_with_warm_snapshot_equal(self, snapshot_dir, late_window_fresh):
        """Process workers warmed from the snapshot merge to the same
        dataset as a no-snapshot sequential run."""
        dataset = ParallelCampaignRunner(
            CONFIG, workers=2, executor="process",
            snapshot_dir=snapshot_dir, **LATE_KWARGS
        ).run()
        assert dataset == late_window_fresh

    def test_thread_pipeline_with_snapshot_builds_once(
        self, snapshot_dir, ech_week_fresh
    ):
        """With a snapshot available, concurrent thread tasks load or
        reuse — never each construct their own world."""
        registry = snapshot_mod.world_registry()
        registry.clear()
        dataset = ParallelCampaignRunner(
            CONFIG, workers=2, executor="thread",
            snapshot_dir=snapshot_dir, **ECH_KWARGS
        ).run()
        assert dataset == ech_week_fresh
        stats = registry.stats()
        assert stats["built"] == 0, "every task must load or reuse, not build"
        assert stats["loaded"] >= 1

    def test_unwritable_snapshot_dir_falls_back_to_building(
        self, tmp_path, late_window_fresh
    ):
        """A snapshot_dir that cannot hold files (here: a regular file)
        degrades to build-per-worker instead of crashing the run."""
        bogus = tmp_path / "not-a-directory"
        bogus.write_text("occupied")
        dataset = ParallelCampaignRunner(
            CONFIG, workers=2, executor="process",
            snapshot_dir=str(bogus), **LATE_KWARGS
        ).run()
        assert dataset == late_window_fresh

    def test_thread_pipeline_reuses_registry_worlds(self, ech_week_fresh):
        """Thread-mode tasks draw pooled worlds (one build per concurrent
        task, reuse across stages) and still merge to the exact dataset."""
        registry = snapshot_mod.world_registry()
        registry.clear()
        dataset = ParallelCampaignRunner(
            CONFIG, workers=2, executor="thread", **ECH_KWARGS
        ).run()
        stats = registry.stats()
        assert dataset == ech_week_fresh
        assert stats["built"] <= 2, "stage tasks must not rebuild per task"
        assert stats["reused"] >= 1, "later stages must reuse pooled worlds"

    def test_reset_world_reproduces_campaign(self, ech_week_fresh):
        world = World(CONFIG)
        first = run_campaign(world, **ECH_KWARGS)
        world.reset()
        second = run_campaign(world, **ECH_KWARGS)
        assert first == ech_week_fresh
        assert second == ech_week_fresh
        # Transport counters restart at reset, so both runs report the
        # same work (a reused world does not inherit the first run's).
        assert second.run_stats.dns_queries == first.run_stats.dns_queries


# ---------------------------------------------------------------------------
# World.reset mechanics
# ---------------------------------------------------------------------------


class TestWorldReset:
    def test_reset_rewinds_time_and_flushes_timed_caches(self):
        world = World(SimConfig(population=60))
        world.set_time(datetime.date(2023, 9, 1), 12)
        world.stub.query(world.profiles[0].apex, rdtypes.HTTPS)
        assert world.google_resolver._cache or world.google_resolver._delegation_cache
        world.reset()
        assert world.current_date == timeline.STUDY_START
        assert world.current_hour == 0.0
        assert world.clock.now == timeline.epoch_seconds(timeline.STUDY_START)
        assert not world.google_resolver._cache
        assert not world.google_resolver._delegation_cache
        assert not world._zone_cache
        assert world.network.dns_query_count == 0
        assert world.stub.batch is None
        # The world accepts early dates again.
        world.set_time(datetime.date(2023, 5, 10))

    def test_set_time_still_monotonic_between_resets(self):
        world = World(SimConfig(population=60))
        world.set_time(datetime.date(2023, 9, 1))
        with pytest.raises(ValueError):
            world.set_time(datetime.date(2023, 8, 1))


# ---------------------------------------------------------------------------
# registry semantics
# ---------------------------------------------------------------------------


class TestWorldRegistry:
    SMALL = SimConfig(population=60)

    def test_checkout_is_exclusive(self):
        registry = WorldRegistry()
        first = registry.checkout(self.SMALL)
        second = registry.checkout(self.SMALL)
        assert first is not second

    def test_checkin_then_checkout_reuses(self):
        registry = WorldRegistry()
        world = registry.checkout(self.SMALL)
        registry.checkin(world)
        assert registry.checkout(self.SMALL) is world
        assert registry.stats() == {"built": 1, "loaded": 0, "reused": 1, "saved": 0}

    def test_pool_is_keyed_by_config(self):
        registry = WorldRegistry()
        registry.checkin(registry.checkout(self.SMALL))
        other = SimConfig(population=61)
        world = registry.checkout(other)
        assert len(world.profiles) == 61
        assert registry.stats()["reused"] == 0

    def test_idle_pool_is_bounded(self):
        registry = WorldRegistry(max_idle_per_tag=1)
        first = registry.checkout(self.SMALL)
        second = registry.checkout(self.SMALL)
        registry.checkin(first)
        registry.checkin(second)  # over the cap: dropped, not pooled
        assert registry.idle_count(self.SMALL) == 1

    def test_checkin_resets(self):
        registry = WorldRegistry()
        world = registry.checkout(self.SMALL)
        world.set_time(datetime.date(2023, 10, 1))
        registry.checkin(world)
        assert world.current_date == timeline.STUDY_START


# ---------------------------------------------------------------------------
# RRSIG memoisation
# ---------------------------------------------------------------------------


def _rrset(owner="signed.example.com.", address="192.0.2.1"):
    name = Name.from_text(owner)
    return name, RRset(name, rdtypes.A, 300, [ARdata(address)])


class TestSignatureMemo:
    INCEPTION = 1_700_000_000

    def test_memo_hit_returns_byte_identical_signature(self):
        name, rrset = _rrset()
        keys = ZoneKeySet(Name.from_text("example.com."))
        memo = SignatureMemo()
        cold = sign_rrset(rrset, keys.zone_name, keys.zsk, self.INCEPTION, memo=memo)
        warm = sign_rrset(rrset, keys.zone_name, keys.zsk, self.INCEPTION, memo=memo)
        assert memo.hits == 1 and memo.misses == 1
        assert warm.signature == cold.signature
        # And identical to a memo-free signer.
        bare = SignatureMemo(enabled=False)
        direct = sign_rrset(rrset, keys.zone_name, keys.zsk, self.INCEPTION, memo=bare)
        assert direct.signature == cold.signature
        assert bare.hits == bare.misses == 0

    def test_signature_still_verifies(self):
        name, rrset = _rrset()
        keys = ZoneKeySet(Name.from_text("example.com."))
        memo = SignatureMemo()
        sign_rrset(rrset, keys.zone_name, keys.zsk, self.INCEPTION, memo=memo)
        warm = sign_rrset(rrset, keys.zone_name, keys.zsk, self.INCEPTION, memo=memo)
        assert verify_blob(
            keys.zsk.dnskey, signing_input(rrset, warm), warm.signature
        )

    def test_validity_window_keys_separate_entries(self):
        name, rrset = _rrset()
        keys = ZoneKeySet(Name.from_text("example.com."))
        memo = SignatureMemo()
        first = sign_rrset(rrset, keys.zone_name, keys.zsk, self.INCEPTION, memo=memo)
        shifted = sign_rrset(
            rrset, keys.zone_name, keys.zsk, self.INCEPTION + 86400, memo=memo
        )
        assert memo.misses == 2 and memo.hits == 0
        assert first.signature != shifted.signature

    def test_distinct_keys_never_collide(self):
        name, rrset = _rrset()
        memo = SignatureMemo()
        a = ZoneKeySet(Name.from_text("a.example."))
        b = ZoneKeySet(Name.from_text("b.example."))
        sig_a = sign_rrset(rrset, a.zone_name, a.zsk, self.INCEPTION, memo=memo)
        sig_b = sign_rrset(rrset, b.zone_name, b.zsk, self.INCEPTION, memo=memo)
        assert sig_a.signature != sig_b.signature
        assert memo.misses == 2

    def test_lru_eviction_keeps_hot_entries(self):
        keys = ZoneKeySet(Name.from_text("example.com."))
        memo = SignatureMemo(capacity=2)
        rrsets = [_rrset(f"n{i}.example.com.", f"192.0.2.{i}")[1] for i in range(3)]
        sign_rrset(rrsets[0], keys.zone_name, keys.zsk, self.INCEPTION, memo=memo)
        sign_rrset(rrsets[1], keys.zone_name, keys.zsk, self.INCEPTION, memo=memo)
        # Touch entry 0 so entry 1 is the LRU victim when 2 arrives.
        sign_rrset(rrsets[0], keys.zone_name, keys.zsk, self.INCEPTION, memo=memo)
        sign_rrset(rrsets[2], keys.zone_name, keys.zsk, self.INCEPTION, memo=memo)
        assert len(memo) == 2
        sign_rrset(rrsets[0], keys.zone_name, keys.zsk, self.INCEPTION, memo=memo)
        assert memo.hits == 2  # the hot entry survived eviction
        sign_rrset(rrsets[1], keys.zone_name, keys.zsk, self.INCEPTION, memo=memo)
        assert memo.misses == 4  # the cold one was evicted and re-signed

    def test_corrupted_record_does_not_poison_the_memo(self):
        from repro.zones.zone import Zone

        apex = Name.from_text("poison.example.com.")
        memo = SignatureMemo()
        zone = Zone(apex)
        zone.ensure_soa()
        zone.add_rrset(RRset(apex, rdtypes.A, 300, [ARdata("192.0.2.7")]))
        zone.sign(self.INCEPTION, memo=memo)
        zone.corrupt_signature(apex, rdtypes.A)
        resigned = Zone(apex)
        resigned.ensure_soa()
        resigned.add_rrset(RRset(apex, rdtypes.A, 300, [ARdata("192.0.2.7")]))
        resigned.sign(self.INCEPTION, keyset=zone.keyset, memo=memo)
        sig = resigned.get_rrsigs(apex, rdtypes.A)[0]
        rrset = resigned.get_rrset(apex, rdtypes.A)
        assert verify_blob(
            zone.keyset.zsk.dnskey, signing_input(rrset, sig), sig.signature
        )


# ---------------------------------------------------------------------------
# TLD DS-cache LRU (formerly clear-everything-at-50k)
# ---------------------------------------------------------------------------


class TestDsCacheLru:
    def test_eviction_is_lru_not_wholesale(self, monkeypatch):
        """Entries are keyed per (delegation, day); over capacity, the
        least-recently-used one is dropped — the old policy cleared the
        whole cache, evicting hot delegations with the cold."""
        monkeypatch.setattr(world_mod, "_DS_CACHE_CAPACITY", 2)
        world = World(SimConfig(population=150))
        secure = [
            p for p in world.profiles
            if p.dnssec_signed and p.ds_uploaded and p.dnssec_sign_day < 0
        ]
        assert secure, "population must include secure delegations"
        profile = secure[0]
        tld = world.tld_zone_containing(profile.apex)
        days = [timeline.STUDY_START + datetime.timedelta(days=i) for i in range(3)]
        keys = [(profile.apex, timeline.day_index(day)) for day in days]

        world.set_time(days[0])
        assert tld.ds_with_sigs(profile.apex)[0] is not None
        world.set_time(days[1])
        tld.ds_with_sigs(profile.apex)
        # Rewind (the cache deliberately survives a reset — its entries
        # are pure functions of config and day) and touch day 0 so day 1
        # becomes the LRU victim.
        world.reset()
        world.set_time(days[0])
        tld.ds_with_sigs(profile.apex)
        world.set_time(days[2])
        tld.ds_with_sigs(profile.apex)

        assert len(tld._ds_cache) == 2
        assert keys[0] in tld._ds_cache, "hot entry must survive eviction"
        assert keys[1] not in tld._ds_cache, "LRU victim is the cold entry"
        assert keys[2] in tld._ds_cache

    def test_repeat_lookup_hits_cache(self):
        world = World(SimConfig(population=150))
        secure = [
            p for p in world.profiles
            if p.dnssec_signed and p.ds_uploaded and p.dnssec_sign_day < 0
        ]
        profile = secure[0]
        tld = world.tld_zone_containing(profile.apex)
        first = tld.ds_with_sigs(profile.apex)
        second = tld.ds_with_sigs(profile.apex)
        assert first[0] is second[0], "cache hit must return the stored RRset"
