"""Unit tests for the §4.2.3 intermittency classifier, driven by
hand-built datasets so every classification branch is pinned down."""

import datetime

import pytest

from repro.analysis.intermittent import IntermittencyReport, analyze_intermittency
from repro.scanner.dataset import DailySnapshot, Dataset
from repro.scanner.records import DomainObservation, HttpsRecordView
from repro.simnet import timeline

CF_NS = ("alice.ns.cloudflare.com", "bob.ns.cloudflare.com")
OTHER_NS = ("ns1.generic-host.net", "ns2.generic-host.net")
MIXED_NS = ("alice.ns.cloudflare.com", "ns1.generic-host.net")

_DAYS = [timeline.NS_IP_WHOIS_SCAN_START + datetime.timedelta(days=7 * i) for i in range(6)]


def _record():
    return HttpsRecordView(1, ".", ("h2", "h3"), None, ("1.2.3.4",), (), False)


def _observation(name, ns):
    return DomainObservation(
        name, "apex", 0, https_records=(_record(),), ns_names=ns, a_addrs=("1.2.3.4",)
    )


def build_dataset(domain_days):
    """domain_days: name -> list of per-day specs:
    ('on', ns) active with that NS set; ('off', ns) inactive with
    watchlist NS; ('off', None) inactive with NS records missing."""
    dataset = Dataset(population=100, seed="synthetic", day_step=7)
    names = tuple(sorted(domain_days))
    for i, day in enumerate(_DAYS):
        snapshot = DailySnapshot(day, names)
        for name, specs in domain_days.items():
            state, ns = specs[i]
            if state == "on":
                snapshot.apex[name] = _observation(name, ns)
                snapshot.apex_https_count += 1
            else:
                snapshot.watchlist_ns[name] = ns if ns is not None else ()
        dataset.add_snapshot(snapshot)
    return dataset


def classify(specs) -> IntermittencyReport:
    return analyze_intermittency(build_dataset({"test.com": specs}))


ON_CF = ("on", CF_NS)


class TestClassifierBranches:
    def test_always_active_not_intermittent(self):
        report = classify([ON_CF] * 6)
        assert report.intermittent_domains == 0

    def test_proxy_toggle_same_cf_ns(self):
        report = classify([ON_CF, ("off", CF_NS), ON_CF, ("off", CF_NS), ON_CF, ON_CF])
        assert report.intermittent_domains == 1
        assert report.same_ns_cloudflare_only == 1

    def test_non_cf_same_ns(self):
        on = ("on", OTHER_NS)
        report = classify([on, ("off", OTHER_NS), on, on, on, on])
        assert report.same_ns_other == 1
        assert report.same_ns_cloudflare_only == 0

    def test_mixed_set_constant(self):
        on = ("on", MIXED_NS)
        report = classify([on, ("off", MIXED_NS), on, on, on, on])
        assert report.same_ns_other == 1

    def test_ns_change_and_never_returns(self):
        report = classify([ON_CF, ON_CF, ("off", OTHER_NS), ("off", OTHER_NS),
                           ("off", OTHER_NS), ("off", OTHER_NS)])
        assert report.lost_on_ns_change == 1
        assert report.same_ns_domains == 0

    def test_mixed_ns_during_deactivation_then_back(self):
        report = classify([ON_CF, ("off", MIXED_NS), ON_CF, ON_CF, ON_CF, ON_CF])
        assert report.mixed_ns_on_deactivation == 1

    def test_no_ns_when_deactivated(self):
        report = classify([ON_CF, ("off", None), ON_CF, ("off", None), ON_CF, ON_CF])
        assert report.missing_ns_on_deactivation == 1

    def test_never_active_ignored(self):
        report = classify([("off", CF_NS)] * 6)
        assert report.intermittent_domains == 0

    def test_multiple_domains_counted_independently(self):
        dataset = build_dataset({
            "toggle.com": [ON_CF, ("off", CF_NS), ON_CF, ON_CF, ON_CF, ON_CF],
            "mover.com": [ON_CF, ON_CF, ON_CF, ("off", OTHER_NS), ("off", OTHER_NS), ("off", OTHER_NS)],
            "steady.com": [ON_CF] * 6,
        })
        report = analyze_intermittency(dataset)
        assert report.intermittent_domains == 2
        assert report.same_ns_cloudflare_only == 1
        assert report.lost_on_ns_change == 1

    def test_churny_domain_excluded(self):
        """Domains absent from the daily list on some window day cannot be
        classified (absence masquerades as deactivation)."""
        dataset = Dataset(population=100, seed="synthetic", day_step=7)
        for i, day in enumerate(_DAYS):
            names = ("flaky.com",) if i % 2 == 0 else ()
            snapshot = DailySnapshot(day, names)
            if names:
                snapshot.apex["flaky.com"] = _observation("flaky.com", CF_NS)
                snapshot.apex_https_count = 1
            dataset.add_snapshot(snapshot)
        report = analyze_intermittency(dataset)
        assert report.intermittent_domains == 0

    def test_share_property(self):
        report = IntermittencyReport(10, 8, 6, 2, 0, 0, 0)
        assert report.same_ns_cloudflare_share == pytest.approx(0.75)

    def test_share_empty_safe(self):
        report = IntermittencyReport(0, 0, 0, 0, 0, 0, 0)
        assert report.same_ns_cloudflare_share == 0.0
