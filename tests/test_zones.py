"""Unit tests for zone containers and the zone tree."""

import pytest

from repro.dnscore import rdtypes
from repro.dnscore.names import Name
from repro.zones.tree import ZoneTree
from repro.zones.zone import Zone, ZoneError

NOW = 1_000_000


class TestZoneContent:
    def test_add_and_get(self):
        zone = Zone(Name.from_text("a.com."))
        zone.add_record("a.com.", "A", "1.2.3.4")
        rrset = zone.get_rrset(Name.from_text("a.com."), rdtypes.A)
        assert rrset is not None and rrset[0].address == "1.2.3.4"

    def test_out_of_zone_rejected(self):
        zone = Zone(Name.from_text("a.com."))
        with pytest.raises(ZoneError):
            zone.add_record("b.com.", "A", "1.2.3.4")

    def test_apex_cname_rejected(self):
        zone = Zone(Name.from_text("a.com."))
        with pytest.raises(ZoneError):
            zone.add_record("a.com.", "CNAME", "b.com.")

    def test_apex_cname_allowed_when_misconfigured(self):
        zone = Zone(Name.from_text("a.com."), allow_apex_cname=True)
        zone.ensure_soa()
        zone.add_record("a.com.", "CNAME", "www.a.com.")  # footnote-3 behaviour
        assert zone.get_rrset(zone.apex, rdtypes.CNAME) is not None

    def test_cname_conflicts_with_other_types(self):
        zone = Zone(Name.from_text("a.com."))
        zone.add_record("www.a.com.", "A", "1.2.3.4")
        with pytest.raises(ZoneError):
            zone.add_record("www.a.com.", "CNAME", "a.com.")

    def test_other_type_conflicts_with_cname(self):
        zone = Zone(Name.from_text("a.com."))
        zone.add_record("www.a.com.", "CNAME", "a.com.")
        with pytest.raises(ZoneError):
            zone.add_record("www.a.com.", "A", "1.2.3.4")

    def test_merge_same_rrset(self):
        zone = Zone(Name.from_text("a.com."))
        zone.add_record("a.com.", "A", "1.2.3.4")
        zone.add_record("a.com.", "A", "5.6.7.8")
        assert len(zone.get_rrset(zone.apex, rdtypes.A)) == 2

    def test_has_name_empty_nonterminal(self):
        zone = Zone(Name.from_text("a.com."))
        zone.add_record("x.y.a.com.", "A", "1.1.1.1")
        assert zone.has_name(Name.from_text("y.a.com."))

    def test_ensure_soa_idempotent(self):
        zone = Zone(Name.from_text("a.com."))
        zone.ensure_soa(serial=5)
        zone.ensure_soa(serial=9)
        assert zone.soa[0].serial == 5

    def test_delegation(self):
        zone = Zone(Name.from_text("com."))
        zone.delegate(Name.from_text("a.com."), [Name.from_text("ns1.a.com.")])
        assert zone.is_delegation(Name.from_text("a.com.")) == Name.from_text("a.com.")
        assert zone.is_delegation(Name.from_text("deep.a.com.")) == Name.from_text("a.com.")
        assert zone.is_delegation(Name.from_text("b.com.")) is None

    def test_cannot_delegate_apex(self):
        zone = Zone(Name.from_text("com."))
        with pytest.raises(ZoneError):
            zone.delegate(zone.apex, [Name.from_text("ns.example.")])


class TestZoneSigning:
    def make_zone(self):
        zone = Zone(Name.from_text("a.com."))
        zone.ensure_soa()
        zone.add_record("a.com.", "HTTPS", "1 . alpn=h2")
        zone.add_record("a.com.", "A", "1.2.3.4")
        return zone

    def test_sign_adds_dnskey_and_rrsigs(self):
        zone = self.make_zone()
        zone.sign(NOW)
        assert zone.signed
        assert zone.get_rrset(zone.apex, rdtypes.DNSKEY) is not None
        assert zone.get_rrsigs(zone.apex, rdtypes.HTTPS)
        assert zone.get_rrsigs(zone.apex, rdtypes.A)
        assert zone.get_rrsigs(zone.apex, rdtypes.SOA)

    def test_dnskey_signed_with_ksk(self):
        zone = self.make_zone()
        zone.sign(NOW)
        sigs = zone.get_rrsigs(zone.apex, rdtypes.DNSKEY)
        assert sigs[0].key_tag == zone.keyset.ksk.key_tag

    def test_other_records_signed_with_zsk(self):
        zone = self.make_zone()
        zone.sign(NOW)
        sigs = zone.get_rrsigs(zone.apex, rdtypes.HTTPS)
        assert sigs[0].key_tag == zone.keyset.zsk.key_tag

    def test_delegation_ns_not_signed(self):
        zone = Zone(Name.from_text("com."))
        zone.ensure_soa()
        zone.delegate(Name.from_text("a.com."), [Name.from_text("ns1.a.com.")])
        zone.sign(NOW)
        assert not zone.get_rrsigs(Name.from_text("a.com."), rdtypes.NS)

    def test_ds_requires_signing(self):
        zone = self.make_zone()
        with pytest.raises(ZoneError):
            zone.ds_rdatas()

    def test_corrupt_signature(self):
        zone = self.make_zone()
        zone.sign(NOW)
        before = zone.get_rrsigs(zone.apex, rdtypes.HTTPS)[0].signature
        zone.corrupt_signature(zone.apex, rdtypes.HTTPS)
        after = zone.get_rrsigs(zone.apex, rdtypes.HTTPS)[0].signature
        assert before != after


class TestZoneTree:
    def build(self):
        tree = ZoneTree()
        root = Zone(Name.root())
        root.ensure_soa()
        com = Zone(Name.from_text("com."))
        com.ensure_soa()
        a = Zone(Name.from_text("a.com."))
        a.ensure_soa()
        sub = Zone(Name.from_text("deep.a.com."))
        sub.ensure_soa()
        for zone in (root, com, a, sub):
            tree.add_zone(zone)
        return tree

    def test_longest_match(self):
        tree = self.build()
        assert tree.zone_for(Name.from_text("x.deep.a.com.")).apex == Name.from_text("deep.a.com.")
        assert tree.zone_for(Name.from_text("www.a.com.")).apex == Name.from_text("a.com.")
        assert tree.zone_for(Name.from_text("b.com.")).apex == Name.from_text("com.")
        assert tree.zone_for(Name.from_text("org.")).apex == Name.root()

    def test_duplicate_zone_rejected(self):
        tree = self.build()
        with pytest.raises(ZoneError):
            tree.add_zone(Zone(Name.from_text("a.com.")))

    def test_parent_zone_of_apex(self):
        tree = self.build()
        assert tree.parent_zone_of_apex(Name.from_text("a.com.")).apex == Name.from_text("com.")
        assert tree.parent_zone_of_apex(Name.from_text("com.")).apex == Name.root()

    def test_record_source_protocol(self):
        tree = self.build()
        assert tree.zone_apex_of(Name.from_text("www.a.com.")) == Name.from_text("a.com.")
        assert tree.parent_zone_of(Name.from_text("a.com.")) == Name.from_text("com.")
        assert tree.parent_zone_of(Name.root()) is None

    def test_ds_upload_requires_signed_child(self):
        tree = self.build()
        with pytest.raises(ZoneError):
            tree.upload_ds(Name.from_text("a.com."), NOW)

    def test_ds_lives_in_parent(self):
        tree = self.build()
        child = tree.get_zone(Name.from_text("a.com."))
        child.sign(NOW)
        parent = tree.get_zone(Name.from_text("com."))
        parent.sign(NOW)
        tree.upload_ds(Name.from_text("a.com."), NOW)
        rrset, sigs = tree.fetch_with_sigs(Name.from_text("a.com."), rdtypes.DS)
        assert rrset is not None
        assert sigs, "parent must sign the DS RRset"
