"""Failure injection: the measurement pipeline under broken
infrastructure — unreachable servers, lame delegations, signature-
stripping providers — plus wire-mode fidelity of the full world."""

import datetime

import pytest

from repro.dnscore import rdtypes
from repro.dnscore.names import Name
from repro.scanner import ScanEngine
from repro.simnet import SimConfig, World, timeline
from repro.simnet.providers import PROVIDERS

MID = datetime.date(2023, 9, 15)


def make_world(population=300, wire_mode=False):
    world = World(SimConfig(population=population, wire_mode=wire_mode))
    world.set_time(MID)
    return world


def active_cf_profile(world):
    return next(
        p for p in world.listed_profiles()
        if p.adopter and p.provider_key == "cloudflare" and not p.www_only
        and p.intermittency == "none" and p.adoption_start_day < 0
        and p.deactivation_day is None
    )


class TestServerFailures:
    def test_provider_server_down_servfail(self):
        world = make_world()
        profile = active_cf_profile(world)
        world.network.set_unreachable(PROVIDERS["cloudflare"].server_ip)
        response = world.stub.query_https(profile.apex)
        assert response.rcode == rdtypes.SERVFAIL

    def test_scan_survives_broken_domain(self):
        """One broken domain must not poison the rest of a scan."""
        world = make_world()
        engine = ScanEngine(world)
        world.network.set_unreachable(PROVIDERS["godaddy"].server_ip)
        scanned = 0
        https = 0
        for profile in world.listed_profiles()[:80]:
            obs = engine.scan_name(profile.apex, "apex")
            scanned += 1
            https += obs.has_https
        assert scanned == 80
        assert https > 0

    def test_primary_resolver_down_uses_backup(self):
        world = make_world()
        profile = active_cf_profile(world)
        # Kill the primary's view of the root; the stub fails over.
        world.google_resolver.root_hint_ips = ["203.0.113.99"]
        world.google_resolver.flush_cache()
        response = world.stub.query_https(profile.apex)
        assert response.get_answer(profile.apex, rdtypes.HTTPS) is not None

    def test_tld_server_down_everything_servfails(self):
        world = make_world()
        profile = active_cf_profile(world)
        from repro.simnet import ipspace

        world.network.set_unreachable(ipspace.TLD_SERVER_IP)
        for resolver in (world.google_resolver, world.cloudflare_resolver):
            resolver.flush_cache()
        response = world.stub.query_https(profile.apex)
        assert response.rcode == rdtypes.SERVFAIL


class TestSignatureStripping:
    def test_drop_rrsigs_yields_unsigned_view(self):
        world = make_world()
        candidates = [
            p for p in world.listed_profiles()
            if p.adopter and p.dnssec_signed and p.dnssec_sign_day < 0
            and p.provider_key == "cloudflare" and p.intermittency == "none"
            and p.adoption_start_day < 0 and p.deactivation_day is None and not p.www_only
        ]
        if not candidates:
            pytest.skip("no signed adopter at this population")
        profile = candidates[0]
        server = world.provider_servers["cloudflare"]
        server.drop_rrsigs = True
        try:
            engine = ScanEngine(world)
            obs = engine.scan_name(profile.apex, "apex")
            if not obs.has_https:
                pytest.skip("domain inactive today")
            # The scanner's signed-share metric (Fig 5 solid line) drops to
            # zero for this provider. (The AD bit comes from the resolver's
            # validator, which fetches records itself — see the god's-eye
            # substitution note in DESIGN.md — so it is not asserted here.)
            assert not obs.rrsig_present
        finally:
            server.drop_rrsigs = False


class TestNegativeCaching:
    def test_nxdomain_cached(self):
        world = make_world()
        missing = Name.from_text("definitely-not-registered-00000.com.")
        world.stub.query(missing, rdtypes.A)
        count = world.network.dns_query_count
        world.stub.query(missing, rdtypes.A)
        assert world.network.dns_query_count == count, "negative answer must be cached"


class TestWireModeFidelity:
    def test_identical_scan_results_both_transports(self):
        """The full world must produce byte-identical observations whether
        messages cross the wire codec or not."""
        fast = make_world(population=200, wire_mode=False)
        wired = make_world(population=200, wire_mode=True)
        fast_engine, wired_engine = ScanEngine(fast), ScanEngine(wired)
        for profile_fast, profile_wired in zip(fast.profiles[:60], wired.profiles[:60]):
            assert profile_fast.name == profile_wired.name
            a = fast_engine.scan_name(profile_fast.apex, "apex")
            b = wired_engine.scan_name(profile_wired.apex, "apex")
            assert a.has_https == b.has_https, profile_fast.name
            assert a.rcode == b.rcode
            assert a.a_addrs == b.a_addrs
            assert a.ns_names == b.ns_names
            assert a.rrsig_present == b.rrsig_present
            assert a.ad_flag == b.ad_flag
            assert len(a.https_records) == len(b.https_records)
            for record_a, record_b in zip(a.https_records, b.https_records):
                assert record_a.priority == record_b.priority
                assert record_a.alpn == record_b.alpn
                assert record_a.ipv4hints == record_b.ipv4hints
                assert record_a.ech_digest == record_b.ech_digest
