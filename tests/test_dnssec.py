"""Unit tests for DNSSEC keys, signing, and chain validation."""

import pytest

from repro.dnscore import rdtypes
from repro.dnscore.names import Name
from repro.dnscore.rrset import RRset
from repro.dnssec.keys import ZoneKey, ZoneKeySet, ds_matches_dnskey
from repro.dnssec.signing import rrsig_is_timely, sign_rrset, signing_input
from repro.dnssec.validation import ChainValidator, ValidationState
from repro.zones.tree import ZoneTree
from repro.zones.zone import Zone

NOW = 1_000_000


def build_tree(sign_child=True, upload_ds=True, corrupt=False):
    """root → com → example.com with controllable breakage."""
    root = Zone(Name.root())
    root.ensure_soa(Name.from_text("a.root."))
    root.delegate(Name.from_text("com."), [Name.from_text("ns.tld.")])
    com = Zone(Name.from_text("com."))
    com.ensure_soa(Name.from_text("ns.tld."))
    com.delegate(Name.from_text("example.com."), [Name.from_text("ns1.example.com.")])
    example = Zone(Name.from_text("example.com."))
    example.ensure_soa(Name.from_text("ns1.example.com."))
    example.add_record("example.com.", "HTTPS", "1 . alpn=h2")
    example.add_record("example.com.", "A", "10.0.0.9")

    if sign_child:
        example.sign(NOW)
    com.sign(NOW)
    root.sign(NOW)

    tree = ZoneTree()
    for zone in (root, com, example):
        tree.add_zone(zone)
    tree.upload_ds(Name.from_text("com."), NOW)
    if sign_child and upload_ds:
        tree.upload_ds(Name.from_text("example.com."), NOW)
    if corrupt and sign_child:
        example.corrupt_signature(Name.from_text("example.com."), rdtypes.HTTPS)
    return tree


class TestKeys:
    def test_derive_deterministic(self):
        a = ZoneKey.derive(Name.from_text("a.com."), "zsk")
        b = ZoneKey.derive(Name.from_text("a.com."), "zsk")
        assert a.public_key == b.public_key
        assert a.key_tag == b.key_tag

    def test_ksk_zsk_differ(self):
        keyset = ZoneKeySet(Name.from_text("a.com."))
        assert keyset.ksk.public_key != keyset.zsk.public_key
        assert keyset.ksk.is_ksk and not keyset.zsk.is_ksk

    def test_generation_changes_key(self):
        a = ZoneKey.derive(Name.from_text("a.com."), "zsk", 0)
        b = ZoneKey.derive(Name.from_text("a.com."), "zsk", 1)
        assert a.public_key != b.public_key

    def test_ds_matches_own_dnskey(self):
        name = Name.from_text("a.com.")
        key = ZoneKey.derive(name, "ksk")
        assert ds_matches_dnskey(name, key.ds_record(name), key.dnskey)

    def test_ds_rejects_other_key(self):
        name = Name.from_text("a.com.")
        key = ZoneKey.derive(name, "ksk")
        other = ZoneKey.derive(Name.from_text("b.com."), "ksk")
        assert not ds_matches_dnskey(name, key.ds_record(name), other.dnskey)

    def test_key_for_tag(self):
        keyset = ZoneKeySet(Name.from_text("a.com."))
        assert keyset.key_for_tag(keyset.zsk.key_tag) is keyset.zsk
        assert keyset.key_for_tag(0xFFFF) is None or keyset.key_for_tag(0xFFFF)


class TestSigning:
    def make_rrset(self):
        return RRset.from_text("a.com.", 300, "A", "1.2.3.4", "2.3.4.5")

    def test_sign_produces_valid_rrsig(self):
        key = ZoneKey.derive(Name.from_text("a.com."), "zsk")
        rrset = self.make_rrset()
        rrsig = sign_rrset(rrset, Name.from_text("a.com."), key, NOW)
        assert rrsig.type_covered == rdtypes.A
        assert rrsig.key_tag == key.key_tag
        assert rrsig.signature == key.sign_blob(signing_input(rrset, rrsig))

    def test_signature_covers_rdata_order_canonically(self):
        key = ZoneKey.derive(Name.from_text("a.com."), "zsk")
        r1 = RRset.from_text("a.com.", 300, "A", "1.2.3.4", "2.3.4.5")
        r2 = RRset.from_text("a.com.", 300, "A", "2.3.4.5", "1.2.3.4")
        s1 = sign_rrset(r1, Name.from_text("a.com."), key, NOW)
        s2 = sign_rrset(r2, Name.from_text("a.com."), key, NOW)
        assert s1.signature == s2.signature

    def test_timeliness(self):
        key = ZoneKey.derive(Name.from_text("a.com."), "zsk")
        rrsig = sign_rrset(self.make_rrset(), Name.from_text("a.com."), key, NOW, NOW + 100)
        assert rrsig_is_timely(rrsig, NOW + 50)
        assert not rrsig_is_timely(rrsig, NOW + 101)
        assert not rrsig_is_timely(rrsig, NOW - 1)

    def test_labels_field(self):
        key = ZoneKey.derive(Name.from_text("a.com."), "zsk")
        rrset = RRset.from_text("www.a.com.", 300, "A", "1.1.1.1")
        rrsig = sign_rrset(rrset, Name.from_text("a.com."), key, NOW)
        assert rrsig.labels == 3


class TestChainValidation:
    def test_secure_chain(self):
        tree = build_tree()
        validator = ChainValidator(tree)
        result = validator.validate(Name.from_text("example.com."), rdtypes.HTTPS, NOW)
        assert result.state is ValidationState.SECURE

    def test_insecure_when_unsigned(self):
        tree = build_tree(sign_child=False)
        validator = ChainValidator(tree)
        result = validator.validate(Name.from_text("example.com."), rdtypes.HTTPS, NOW)
        assert result.state is ValidationState.INSECURE

    def test_insecure_when_ds_missing(self):
        """The paper's dominant failure: signed zone, no DS uploaded."""
        tree = build_tree(upload_ds=False)
        validator = ChainValidator(tree)
        result = validator.validate(Name.from_text("example.com."), rdtypes.HTTPS, NOW)
        assert result.state is ValidationState.INSECURE
        assert "no DS" in result.reason

    def test_bogus_on_corrupted_signature(self):
        tree = build_tree(corrupt=True)
        validator = ChainValidator(tree)
        result = validator.validate(Name.from_text("example.com."), rdtypes.HTTPS, NOW)
        assert result.state is ValidationState.BOGUS

    def test_bogus_on_expired_signature(self):
        tree = build_tree()
        validator = ChainValidator(tree)
        far_future = NOW + 365 * 86400 * 10
        result = validator.validate(Name.from_text("example.com."), rdtypes.HTTPS, far_future)
        assert result.state is ValidationState.BOGUS

    def test_bogus_on_ds_mismatch(self):
        tree = build_tree()
        com = tree.get_zone(Name.from_text("com."))
        # Replace the DS digest with junk.
        ds_rrset = com.get_rrset(Name.from_text("example.com."), rdtypes.DS)
        ds = ds_rrset[0]
        ds.digest = b"\x00" * len(ds.digest)
        ds.invalidate_wire_cache()
        validator = ChainValidator(tree)
        result = validator.validate(Name.from_text("example.com."), rdtypes.HTTPS, NOW)
        assert result.state is ValidationState.BOGUS

    def test_indeterminate_outside_tree(self):
        tree = build_tree()
        validator = ChainValidator(tree)
        # A zone tree always resolves names to some zone, so probe a name
        # whose RRset simply does not exist.
        result = validator.validate(Name.from_text("nonexistent.example.com."), rdtypes.A, NOW)
        assert result.state in (ValidationState.INDETERMINATE, ValidationState.SECURE)
        if result.state is ValidationState.INDETERMINATE:
            assert "no RRset" in result.reason

    def test_memoization_consistent(self):
        tree = build_tree()
        validator = ChainValidator(tree)
        r1 = validator.validate(Name.from_text("example.com."), rdtypes.HTTPS, NOW)
        r2 = validator.validate(Name.from_text("example.com."), rdtypes.A, NOW)
        assert r1.state is ValidationState.SECURE
        assert r2.state is ValidationState.SECURE

    def test_chain_lists_zones(self):
        tree = build_tree()
        validator = ChainValidator(tree)
        result = validator.validate(Name.from_text("example.com."), rdtypes.HTTPS, NOW)
        assert result.chain == [".", "com.", "example.com."]
