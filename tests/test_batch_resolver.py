"""Tests for the batched resolution core.

The load-bearing property mirrors the pipeline's: *equivalence*. Driving
resolutions through the resumable state machine — serially or as an
interleaved batch with coalescing — must produce the same answers,
rcodes, AD bits, and post-run resolver cache contents as the blocking
path, while coalescing measurably drops duplicate upstream queries.
"""

import datetime

import pytest

from repro.dnscore import rdtypes
from repro.dnscore.names import Name
from repro.resolver.batch import BatchResolver
from repro.resolver.network import Network
from repro.resolver.recursive import RecursiveResolver, Resolution, UpstreamQuery
from repro.scanner import ParallelCampaignRunner, run_campaign
from repro.simnet import SimConfig, World

from test_resolver import build_internet


def _view(response):
    """The client-visible value of a response: rcode, AD, answer rrsets."""
    return (
        response.rcode,
        response.authenticated_data,
        [(rr.name, rr.rdtype, rr.ttl, [rd.to_text() for rd in rr]) for rr in response.answers],
    )


def _cache_view(resolver):
    """Value view of a resolver's positive + delegation caches."""
    answers = {
        key: (entry.expiry, entry.rcode, entry.ad,
              [(rr.name, rr.rdtype, [rd.to_text() for rd in rr]) for rr in entry.answers])
        for key, entry in resolver._cache.items()
    }
    return answers, dict(resolver._delegation_cache)


QUESTIONS = [
    ("example.com.", rdtypes.HTTPS),
    ("www.example.com.", rdtypes.A),
    ("alias.example.com.", rdtypes.A),
    ("example.com.", rdtypes.A),
    ("missing.example.com.", rdtypes.A),
    ("example.com.", rdtypes.HTTPS),  # duplicate: memo/attach territory
    ("target.elsewhere.com.", rdtypes.A),
]


def _pairs():
    return [(Name.from_text(text), rdtype) for text, rdtype in QUESTIONS]


class TestResolutionStateMachine:
    def test_yields_upstream_queries_and_completes(self):
        network, _clock, resolver, _tree = build_internet()
        resolution = resolver.resolution("example.com.", rdtypes.HTTPS)
        request = resolution.start()
        steps = 0
        while request is not None:
            assert isinstance(request, UpstreamQuery)
            assert not resolution.done
            reply = network.send_dns_query(request.ip, request.query)
            request = resolution.step(reply)
            steps += 1
        assert resolution.done
        assert steps >= 3  # root referral, TLD referral, authoritative answer
        assert resolution.response.get_answer("example.com.", rdtypes.HTTPS) is not None

    def test_manual_drive_equals_resolve(self):
        _n1, _c1, manual, _t1 = build_internet()
        _n2, _c2, direct, _t2 = build_internet()
        resolution = manual.resolution("alias.example.com.", rdtypes.A)
        request = resolution.start()
        while request is not None:
            request = resolution.step(manual.network.send_dns_query(request.ip, request.query))
        assert _view(resolution.response) == _view(direct.resolve("alias.example.com.", rdtypes.A))

    def test_cache_hit_completes_without_yielding(self):
        _network, _clock, resolver, _tree = build_internet()
        resolver.resolve("example.com.", rdtypes.HTTPS)
        resolution = resolver.resolution("example.com.", rdtypes.HTTPS)
        assert resolution.start() is None
        assert resolution.done

    def test_error_thrown_into_machine_triggers_failover(self):
        network, _clock, resolver, _tree = build_internet()
        from repro.resolver.network import HostUnreachable

        resolution = resolver.resolution("example.com.", rdtypes.A)
        request = resolution.start()
        # Pretend the first server is down; the machine must try the next
        # hop (or fail towards SERVFAIL) rather than crash.
        request = resolution.step(error=HostUnreachable("injected"))
        while request is not None:
            request = resolution.step(network.send_dns_query(request.ip, request.query))
        assert resolution.response.rcode in (rdtypes.NOERROR, rdtypes.SERVFAIL)


class TestBatchEquivalence:
    def test_answers_and_cache_state_match_serial(self):
        _n1, _c1, serial_resolver, _t1 = build_internet()
        n2, _c2, batch_resolver_inst, _t2 = build_internet()
        serial_views = [
            _view(serial_resolver.resolve(name, rdtype)) for name, rdtype in _pairs()
        ]
        scheduler = BatchResolver(n2)
        batch_views = [
            _view(response)
            for response in scheduler.resolve_many(batch_resolver_inst, _pairs())
        ]
        assert batch_views == serial_views
        assert _cache_view(batch_resolver_inst) == _cache_view(serial_resolver)

    def test_cold_batch_query_overhead_is_bounded(self):
        """Interleaving concurrent cold resolutions costs at most one
        extra referral hop per job versus serial (whose first job warms
        the delegation cache for the rest); a warm re-batch answers
        entirely from the shared cache fills."""
        n1, _c1, serial_resolver, _t1 = build_internet()
        n2, _c2, batched, _t2 = build_internet()
        for name, rdtype in _pairs():
            serial_resolver.resolve(name, rdtype)
        scheduler = BatchResolver(n2)
        scheduler.resolve_many(batched, _pairs())
        assert n2.dns_query_count <= n1.dns_query_count + len(QUESTIONS)
        # Cache fills were shared: re-running the batch is free.
        count = n2.dns_query_count
        scheduler.resolve_many(batched, _pairs())
        assert n2.dns_query_count == count

    def test_coalesce_disabled_still_equivalent(self):
        _n1, _c1, serial_resolver, _t1 = build_internet()
        n2, _c2, batched, _t2 = build_internet()
        serial_views = [
            _view(serial_resolver.resolve(name, rdtype)) for name, rdtype in _pairs()
        ]
        scheduler = BatchResolver(n2, coalesce=False)
        views = [_view(r) for r in scheduler.resolve_many(batched, _pairs())]
        assert views == serial_views
        assert scheduler.coalesced_queries == 0

    def test_unreachable_world_servfails_whole_batch(self):
        network, _clock, resolver, _tree = build_internet()
        for ip in ("198.41.0.4", "192.5.6.30", "10.0.0.1", "10.0.0.2"):
            network.set_unreachable(ip)
        resolver.flush_cache()
        responses = BatchResolver(network).resolve_many(resolver, _pairs())
        assert all(r.rcode == rdtypes.SERVFAIL for r in responses)

    def test_window_one_degenerates_to_serial(self):
        n1, _c1, serial_resolver, _t1 = build_internet()
        n2, _c2, batched, _t2 = build_internet()
        for name, rdtype in _pairs():
            serial_resolver.resolve(name, rdtype)
        BatchResolver(n2, window=1).resolve_many(batched, _pairs())
        assert n2.dns_query_count == n1.dns_query_count

    def test_rejects_zero_window(self):
        with pytest.raises(ValueError):
            BatchResolver(Network(), window=0)

    def test_failover_batch_uses_backup_resolvers_own_network(self):
        """A backup resolver on a different fabric must send its retry
        batch over *its* network, exactly like serial failover does."""
        from repro.resolver.stub import StubResolver

        primary_net = Network()  # empty fabric: the primary SERVFAILs
        primary = RecursiveResolver("broken", primary_net, ["203.0.113.99"])
        backup_net, _clock, backup, _tree = build_internet()
        stub = StubResolver([primary, backup])
        responses = stub.query_batch([(Name.from_text("example.com."), rdtypes.HTTPS)])
        assert responses[0].rcode == rdtypes.NOERROR
        assert backup_net.dns_query_count > 0


class TestCoalescing:
    def _convergent_internet(self):
        """Two zones delegated to the same *glueless* NS host, so two
        concurrent resolutions converge on identical upstream queries."""
        from repro.resolver.authoritative import AuthoritativeServer
        from repro.zones.zone import Zone

        network, clock, resolver, _tree = build_internet()
        com_server = network.dns_server_at("192.5.6.30")
        com = com_server.tree.zone_for(Name.from_text("one.com."))
        # shared.com hosts the NS name, delegated WITH glue.
        com.delegate(Name.from_text("shared.com."), [Name.from_text("ns1.sharedhost.com.")])
        com.add_record("ns1.sharedhost.com.", "A", "10.0.0.50")
        shared = Zone(Name.from_text("shared.com."))
        shared.ensure_soa()
        shared.add_record("ns.shared.com.", "A", "10.0.0.60")
        shared_server = AuthoritativeServer("shared")
        shared_server.tree.add_zone(shared)
        network.register_dns("10.0.0.50", shared_server)
        # one.com / two.com are delegated to ns.shared.com with NO glue:
        # resolving either first requires chasing ns.shared.com's address.
        leaf_server = AuthoritativeServer("leaves")
        for apex in ("one.com.", "two.com."):
            com.delegate(Name.from_text(apex), [Name.from_text("ns.shared.com.")])
            zone = Zone(Name.from_text(apex))
            zone.ensure_soa()
            zone.add_record(apex, "A", "10.0.1.9")
            leaf_server.tree.add_zone(zone)
        network.register_dns("10.0.0.60", leaf_server)
        return network, clock, resolver

    def test_glueless_chases_coalesce(self):
        serial_net, _sc, serial_resolver = self._convergent_internet()
        batch_net, _bc, batched = self._convergent_internet()
        pairs = [(Name.from_text("one.com."), rdtypes.A), (Name.from_text("two.com."), rdtypes.A)]
        serial_views = [_view(serial_resolver.resolve(n, t)) for n, t in pairs]
        scheduler = BatchResolver(batch_net)
        batch_views = [_view(r) for r in scheduler.resolve_many(batched, pairs)]
        assert batch_views == serial_views
        assert serial_views[0][2], "scenario must actually resolve"
        assert scheduler.coalesced_queries > 0
        assert batch_net.dns_query_count <= serial_net.dns_query_count

    def test_duplicate_jobs_attach_or_memoise(self):
        network, _clock, resolver, _tree = build_internet()
        resolver.cache_enabled = False  # no resolver cache to hide behind
        pairs = [(Name.from_text("example.com."), rdtypes.A)] * 4
        scheduler = BatchResolver(network)
        responses = scheduler.resolve_many(resolver, pairs)
        assert len({_view(r)[0] for r in responses}) == 1
        assert [_view(r) for r in responses[1:]] == [_view(responses[0])] * 3
        # One machine resolved; the other three jobs rode along.
        assert scheduler.attached_jobs + scheduler.memo_hits == 3

    def test_stats_accumulate_across_batches(self):
        network, _clock, resolver, _tree = build_internet()
        scheduler = BatchResolver(network)
        scheduler.resolve_many(resolver, _pairs())
        first_jobs = scheduler.jobs_run
        scheduler.resolve_many(resolver, _pairs())
        assert scheduler.batches_run == 2
        assert scheduler.jobs_run == first_jobs * 2


class _RecordingNetwork:
    """Pass-through transport that logs every (ip, qname, qtype) sent."""

    def __init__(self, network):
        self._network = network
        self.log = []

    def send_dns_query(self, ip, query, attempt=0):
        question = query.questions[0]
        self.log.append((ip, question.name, question.rdtype))
        return self._network.send_dns_query(ip, query, attempt)


class TestServerSelectionUnchanged:
    def test_batched_upstream_sequence_matches_serial(self):
        """The deterministic per-(resolver, qname, day) server selection
        must be untouched by the scheduler: a batched resolution walks
        exactly the serial path's upstream (ip, qname, qtype) sequence."""
        n1, _c1, serial_resolver, _t1 = build_internet()
        n2, _c2, batched, _t2 = build_internet()
        serial_recorder = _RecordingNetwork(n1)
        serial_resolver.network = serial_recorder
        batch_recorder = _RecordingNetwork(n2)
        batched.network = batch_recorder  # batch routes via the resolver's network
        for qname in ("example.com.", "alias.example.com.", "www.example.com."):
            serial_recorder.log.clear()
            serial_resolver.resolve(qname, rdtypes.A)
            batch_recorder.log.clear()
            BatchResolver(n2).resolve_many(
                batched, [(Name.from_text(qname), rdtypes.A)]
            )
            assert batch_recorder.log == serial_recorder.log


class TestScanEngineBatched:
    def test_scan_names_equals_scan_name(self, world):
        from repro.scanner import ScanEngine

        engine = ScanEngine(world)
        items = []
        for profile in world.profiles[:25]:
            items.append((profile.apex, "apex"))
            items.append((profile.www, "www"))
        serial = [engine.scan_name(name, kind) for name, kind in items]
        batched = engine.scan_names(items)
        assert batched == serial

    def test_scan_nameservers_equals_scan_nameserver(self, world):
        from repro.scanner import ScanEngine

        engine = ScanEngine(world)
        hostnames = ["alice.ns.cloudflare.com", "ns1.googledomains.com",
                     "ns1.does-not-exist-zone.example"]
        serial = [engine.scan_nameserver(h) for h in hostnames]
        assert engine.scan_nameservers(hostnames) == serial


class TestNegativeTtlConfig:
    def test_resolver_honours_negative_ttl(self):
        network, clock, resolver, _tree = build_internet()
        resolver.negative_ttl = 5
        # NODATA answer with no SOA floor below negative_ttl: craft by
        # querying a name whose zone returns NODATA; SOA minimum caps it,
        # so exercise the bogus/SERVFAIL path instead, which always uses
        # negative_ttl.
        _n, _c, signed_resolver, tree = build_internet(sign=True)
        signed_resolver.negative_ttl = 5
        zone = tree.get_zone(Name.from_text("example.com."))
        zone.corrupt_signature(Name.from_text("example.com."), rdtypes.HTTPS)
        assert signed_resolver.resolve("example.com.", rdtypes.HTTPS).rcode == rdtypes.SERVFAIL
        count = signed_resolver.network.dns_query_count
        # Within the negative TTL the SERVFAIL is served from cache...
        assert signed_resolver.resolve("example.com.", rdtypes.HTTPS).rcode == rdtypes.SERVFAIL
        assert signed_resolver.network.dns_query_count == count
        # ...and once it lapses the resolver re-queries upstream.
        signed_resolver.clock.advance(6)
        signed_resolver.resolve("example.com.", rdtypes.HTTPS)
        assert signed_resolver.network.dns_query_count > count

    def test_simconfig_threads_negative_ttl_to_world_resolvers(self):
        world = World(SimConfig(population=30, negative_ttl=123))
        assert world.google_resolver.negative_ttl == 123
        assert world.cloudflare_resolver.negative_ttl == 123

    def test_default_matches_previous_constant(self):
        assert SimConfig().negative_ttl == 60
        network = Network()
        assert RecursiveResolver("r", network, []).negative_ttl == 60


class TestCampaignEquivalence:
    """Batched scanning must reproduce the serial campaign dataset
    value-for-value (the PR 1 equality machinery does the comparison)."""

    CONFIG = SimConfig(population=150)
    ECH_KWARGS = dict(
        day_step=7,
        start=datetime.date(2023, 7, 14),
        end=datetime.date(2023, 7, 31),
        ech_sample=5,
    )
    LATE_KWARGS = dict(
        day_step=14,
        start=datetime.date(2023, 12, 20),
        end=datetime.date(2024, 2, 5),
        with_ech_hourly=False,
    )

    @pytest.fixture(scope="class")
    def ech_week_pair(self):
        serial = run_campaign(World(self.CONFIG), **self.ECH_KWARGS)
        batched = run_campaign(World(self.CONFIG), batch=True, **self.ECH_KWARGS)
        return serial, batched

    def test_full_dataset_equal(self, ech_week_pair):
        serial, batched = ech_week_pair
        assert serial.ech_observations, "window must exercise the hourly scan"
        assert batched == serial

    def test_snapshot_iteration_order_matches(self, ech_week_pair):
        serial, batched = ech_week_pair
        for day in serial.days():
            assert list(batched.snapshots[day].apex) == list(serial.snapshots[day].apex)
            assert list(batched.snapshots[day].www) == list(serial.snapshots[day].www)

    def test_batched_run_reports_stats(self, ech_week_pair):
        serial, batched = ech_week_pair
        assert serial.run_stats.dns_queries > 0
        assert serial.run_stats.batch_jobs == 0
        assert batched.run_stats.batch_jobs > 0
        assert batched.run_stats.dns_queries > 0

    def test_late_window_equal(self):
        serial = run_campaign(World(self.CONFIG), **self.LATE_KWARGS)
        batched = run_campaign(World(self.CONFIG), batch=True, **self.LATE_KWARGS)
        assert serial.dnssec_snapshot, "window must cover the DNSSEC snapshot"
        assert any(s.connectivity for s in serial.snapshots.values())
        assert batched == serial

    def test_pipeline_batched_workers_equal_serial(self):
        serial = run_campaign(World(self.CONFIG), **self.ECH_KWARGS)
        runner = ParallelCampaignRunner(
            self.CONFIG, workers=3, executor="thread", batch=True, **self.ECH_KWARGS
        )
        batched = runner.run()
        assert batched == serial
        # Satellite: worker counters survive into the merged run summary.
        assert runner.run_stats is not None
        assert runner.run_stats.dns_queries > 0
        assert runner.run_stats.batch_jobs > 0
        assert batched.run_stats is runner.run_stats

    def test_faulted_campaign_serial_equals_batched(self):
        """Equivalence must survive an active chaos schedule: drop
        decisions key on the explicit attempt number, so in-flight
        coalescing cannot change which queries a fault eats."""
        from repro.simnet.faults import FaultSchedule, FaultSpec
        from repro.simnet.providers import PROVIDERS

        scenario = FaultSchedule(
            name="equiv",
            specs=(
                FaultSpec(
                    kind="packet_loss",
                    ip=PROVIDERS["cloudflare"].server_ip,
                    rate=0.4,
                    start=datetime.date(2023, 7, 17),
                    end=datetime.date(2023, 7, 21),
                ),
                FaultSpec(
                    kind="timeout",
                    ip=PROVIDERS["godaddy"].server_ip,
                    start=datetime.date(2023, 7, 17),
                    end=datetime.date(2023, 7, 21),
                ),
            ),
        )
        serial = run_campaign(World(self.CONFIG), scenario=scenario, **self.ECH_KWARGS)
        batched = run_campaign(
            World(self.CONFIG), batch=True, scenario=scenario, **self.ECH_KWARGS
        )
        assert serial.run_stats.timeouts > 0
        assert batched.run_stats.timeouts > 0
        assert batched == serial
        # ...and through the sharded pipeline under the same schedule.
        runner = ParallelCampaignRunner(
            self.CONFIG, workers=3, executor="thread", batch=True,
            scenario=scenario, **self.ECH_KWARGS
        )
        assert runner.run() == serial
        assert runner.run_stats.timeouts > 0
