"""Unit tests for the ECH subsystem: config codec, HPKE simulation, key
rotation."""

import pytest

from repro.ech.config import (
    ECH_VERSION_DRAFT13,
    ECHConfig,
    ECHConfigError,
    ECHConfigList,
    try_parse_config_list,
)
from repro.ech.hpke import HpkeError, HpkeKeyPair, open_, seal
from repro.ech.keys import ECHKeyManager


def make_config(config_id=7, public_name="cover.example"):
    keypair = HpkeKeyPair.generate(b"test-seed")
    return ECHConfig(config_id, keypair.public_key, public_name), keypair


class TestECHConfigCodec:
    def test_round_trip(self):
        config, _kp = make_config()
        parsed, consumed = ECHConfig.from_wire(config.to_wire())
        assert parsed == config
        assert consumed == len(config.to_wire())

    def test_list_round_trip(self):
        c1, _ = make_config(1)
        c2, _ = make_config(2, "other.example")
        config_list = ECHConfigList([c1, c2])
        parsed = ECHConfigList.from_wire(config_list.to_wire())
        assert parsed == config_list
        assert len(parsed) == 2

    def test_find_by_id(self):
        c1, _ = make_config(1)
        c2, _ = make_config(2)
        config_list = ECHConfigList([c1, c2])
        assert config_list.find_by_id(2) == c2
        assert config_list.find_by_id(99) is None

    def test_empty_list_rejected(self):
        with pytest.raises(ECHConfigError):
            ECHConfigList([])

    def test_version_checked(self):
        config, _ = make_config()
        wire = bytearray(config.to_wire())
        wire[0:2] = b"\xfe\x0a"  # older draft version
        with pytest.raises(ECHConfigError):
            ECHConfig.from_wire(bytes(wire))

    def test_bad_length_prefix(self):
        config, _ = make_config()
        wire = ECHConfigList([config]).to_wire()
        with pytest.raises(ECHConfigError):
            ECHConfigList.from_wire(wire[:-2])

    def test_malformed_returns_none(self):
        assert try_parse_config_list(b"\x00\x08garbage!") is None

    def test_wellformed_parses(self):
        config, _ = make_config()
        wire = ECHConfigList([config]).to_wire()
        assert try_parse_config_list(wire) is not None

    def test_public_name_bounds(self):
        keypair = HpkeKeyPair.generate(b"x")
        with pytest.raises(ECHConfigError):
            ECHConfig(1, keypair.public_key, "")
        with pytest.raises(ECHConfigError):
            ECHConfig(1, keypair.public_key, "a" * 256)

    def test_config_id_bounds(self):
        keypair = HpkeKeyPair.generate(b"x")
        with pytest.raises(ECHConfigError):
            ECHConfig(300, keypair.public_key, "cover.example")

    def test_empty_public_key_rejected(self):
        with pytest.raises(ECHConfigError):
            ECHConfig(1, b"", "cover.example")

    def test_trailing_garbage_rejected(self):
        config, _ = make_config()
        wire = bytearray(config.to_wire())
        # Grow the declared length and append garbage *inside* the config.
        import struct

        (length,) = struct.unpack_from("!H", wire, 2)
        struct.pack_into("!H", wire, 2, length + 2)
        with pytest.raises(ECHConfigError):
            ECHConfig.from_wire(bytes(wire) + b"zz")


class TestHpke:
    def test_seal_open_round_trip(self):
        keypair = HpkeKeyPair.generate(b"alpha")
        sealed = seal(keypair.public_key, b"info", b"aad", b"secret-sni")
        assert open_(keypair, b"info", b"aad", sealed) == b"secret-sni"

    def test_wrong_key_fails(self):
        recipient = HpkeKeyPair.generate(b"alpha")
        wrong = HpkeKeyPair.generate(b"beta")
        sealed = seal(recipient.public_key, b"info", b"aad", b"x")
        with pytest.raises(HpkeError):
            open_(wrong, b"info", b"aad", sealed)

    def test_tampered_ciphertext_fails(self):
        keypair = HpkeKeyPair.generate(b"alpha")
        sealed = bytearray(seal(keypair.public_key, b"info", b"aad", b"payload"))
        sealed[-1] ^= 0xFF
        with pytest.raises(HpkeError):
            open_(keypair, b"info", b"aad", bytes(sealed))

    def test_wrong_aad_fails(self):
        keypair = HpkeKeyPair.generate(b"alpha")
        sealed = seal(keypair.public_key, b"info", b"aad", b"payload")
        with pytest.raises(HpkeError):
            open_(keypair, b"info", b"other-aad", sealed)

    def test_short_blob_fails(self):
        keypair = HpkeKeyPair.generate(b"alpha")
        with pytest.raises(HpkeError):
            open_(keypair, b"info", b"aad", b"short")

    def test_nondeterministic_enc(self):
        keypair = HpkeKeyPair.generate(b"alpha")
        s1 = seal(keypair.public_key, b"i", b"a", b"p")
        s2 = seal(keypair.public_key, b"i", b"a", b"p")
        assert s1 != s2  # fresh ephemeral share every time

    def test_keypair_matches_public(self):
        keypair = HpkeKeyPair.generate(b"alpha")
        assert keypair.matches_public(keypair.public_key)
        assert not keypair.matches_public(b"\x00" * 32)


class TestKeyManager:
    def test_rotation_generations(self):
        km = ECHKeyManager("cover.example", rotation_hours=1.26)
        assert km.generation_for_hour(0) == 0
        assert km.generation_for_hour(2) == 1
        # Generation changes roughly every 1.26 hours.
        generations = [km.generation_for_hour(h) for h in range(24)]
        assert generations == sorted(generations)
        assert len(set(generations)) in (19, 20)

    def test_published_config_changes_with_generation(self):
        km = ECHKeyManager("cover.example", rotation_hours=1.0)
        assert km.published_wire(0) != km.published_wire(1)
        assert km.published_wire(0) == km.published_wire(0)

    def test_deterministic_across_instances(self):
        a = ECHKeyManager("cover.example", seed=b"s")
        b = ECHKeyManager("cover.example", seed=b"s")
        assert a.published_wire(5) == b.published_wire(5)

    def test_active_keypairs_retain_previous(self):
        km = ECHKeyManager("cover.example", rotation_hours=1.0, retain_generations=1)
        keys = km.active_keypairs(10)
        assert len(keys) == 2
        assert keys[0] is km.keypair_for_generation(9)
        assert keys[1] is km.keypair_for_generation(10)

    def test_find_keypair(self):
        km = ECHKeyManager("cover.example", rotation_hours=1.0)
        current = km.keypair_for_generation(km.generation_for_hour(5))
        assert km.find_keypair(5, current.public_key) is current
        stale = km.keypair_for_generation(0)
        assert km.find_keypair(10, stale.public_key) is None

    def test_stale_config_triggers_retry_flow(self):
        """A client using a cached (old) config cannot be decrypted by the
        server once the retained window passes — the §4.4.2 hazard."""
        km = ECHKeyManager("cover.example", rotation_hours=1.0, retain_generations=1)
        old_config = km.published_config_list(0).primary()
        sealed = seal(old_config.public_key, b"i", b"aad", b"inner")
        later_keys = km.active_keypairs(10)
        for key in later_keys:
            with pytest.raises(HpkeError):
                open_(key, b"i", b"aad", sealed)
        retry = km.retry_config_list(10)
        fresh = retry.primary()
        sealed2 = seal(fresh.public_key, b"i", b"aad", b"inner")
        assert open_(km.active_keypairs(10)[-1], b"i", b"aad", sealed2) == b"inner"

    def test_observed_durations_mean_matches_rotation(self):
        km = ECHKeyManager("cover.example", rotation_hours=1.26)
        runs = km.observed_durations(0, 168)
        lengths = [length for _gen, length in runs]
        mean = sum(lengths) / len(lengths)
        assert 1.1 <= mean <= 1.4  # the paper's Figure 4 band

    def test_rotation_hours_positive(self):
        with pytest.raises(ValueError):
            ECHKeyManager("x", rotation_hours=0)
