"""Tests for the scanning framework and campaign orchestration."""

import datetime
import os

import pytest

from repro.dnscore import rdtypes
from repro.scanner import Dataset, ScanEngine, run_campaign
from repro.scanner.dataset import cache_path
from repro.simnet import SimConfig, World, timeline

MID = datetime.date(2023, 9, 15)


@pytest.fixture(scope="module")
def scan_world():
    world = World(SimConfig(population=500))
    world.set_time(MID)
    return world


@pytest.fixture(scope="module")
def engine(scan_world):
    return ScanEngine(scan_world)


class TestScanName:
    def test_adopter_observation(self, scan_world, engine):
        profile = next(
            p for p in scan_world.listed_profiles()
            if p.adopter and p.is_cloudflare and not p.custom_config and not p.www_only
            and p.intermittency == "none" and p.adoption_start_day < 0
            and p.deactivation_day is None
        )
        obs = engine.scan_name(profile.apex, "apex")
        assert obs.has_https
        assert obs.kind == "apex"
        record = obs.https_records[0]
        assert record.priority == 1
        assert record.alpn and "h2" in record.alpn
        assert obs.a_addrs, "follow-up A query must run for adopters"
        assert obs.ns_names, "follow-up NS query must run for adopters"
        assert obs.soa_serial is not None

    def test_nonadopter_observation(self, scan_world, engine):
        profile = next(p for p in scan_world.listed_profiles() if not p.adopter)
        obs = engine.scan_name(profile.apex, "apex")
        assert not obs.has_https
        assert not obs.a_addrs, "no follow-ups without an HTTPS record"

    def test_cname_chase(self, scan_world, engine):
        cohort = [
            p for p in scan_world.profiles
            if p.www_only and p.adopter and p.adoption_start_day < 0 and p.deactivation_day is None
        ]
        if not cohort:
            pytest.skip("no www-only domain in this population")
        obs = engine.scan_name(cohort[0].apex, "apex")
        assert obs.via_cname is not None
        assert obs.has_https, "HTTPS record found at the CNAME target"

    def test_unterminated_cname_chain_is_no_answer(self, engine):
        """A chain longer than the hop limit must not attribute records
        to a mid-chain owner (regression: the old code returned the 8th
        hop as the 'terminal' name)."""
        response, links = self._chain_response(11)
        assert engine._terminal_cname(response, links[0]) is None

    @staticmethod
    def _chain_response(length):
        from repro.dnscore.message import Message
        from repro.dnscore.names import Name
        from repro.dnscore.rdata import CNAMERdata
        from repro.dnscore.rrset import RRset

        links = [Name.from_text(f"hop{i}.example.") for i in range(length + 1)]
        response = Message(1)
        response.is_response = True
        for current, target in zip(links, links[1:]):
            response.answers.append(
                RRset(current, rdtypes.CNAME, 300, [CNAMERdata(target)])
            )
        return response, links

    def test_short_cname_chain_still_resolves(self, engine):
        response, links = self._chain_response(3)
        assert engine._terminal_cname(response, links[0]) == links[-1]

    def test_chain_at_exact_hop_limit_resolves(self, engine):
        response, links = self._chain_response(8)
        assert engine._terminal_cname(response, links[0]) == links[-1]

    def test_chain_one_past_hop_limit_is_no_answer(self, engine):
        response, links = self._chain_response(9)
        assert engine._terminal_cname(response, links[0]) is None

    def test_rrsig_flag(self, scan_world, engine):
        cohort = [
            p for p in scan_world.listed_profiles()
            if p.adopter and p.dnssec_signed and p.dnssec_sign_day < 0
            and p.intermittency == "none" and p.adoption_start_day < 0
            and p.deactivation_day is None and not p.www_only
        ]
        if not cohort:
            pytest.skip("no signed adopter in this population")
        obs = engine.scan_name(cohort[0].apex, "apex")
        if obs.has_https:
            assert obs.rrsig_present


class TestNameServerScan:
    def test_cloudflare_ns_attribution(self, scan_world, engine):
        obs = engine.scan_nameserver("alice.ns.cloudflare.com")
        assert obs.ips
        assert obs.whois_org == "Cloudflare, Inc."

    def test_google_ns_attribution(self, scan_world, engine):
        obs = engine.scan_nameserver("ns1.googledomains.com")
        assert obs.whois_org == "Google LLC"

    def test_unresolvable_ns(self, scan_world, engine):
        obs = engine.scan_nameserver("ns1.does-not-exist-zone.example")
        assert not obs.ips
        assert obs.whois_org is None


class TestConnectivityProbe:
    def test_mismatched_domain_probed(self, scan_world, engine):
        profile = scan_world.profile_by_name("cf-ns.com")
        obs = engine.scan_name(profile.apex, "apex")
        probe = engine.probe_connectivity(profile, obs, scan_world.current_date)
        assert probe is not None
        assert set(probe.hint_addrs) != set(probe.a_addrs)

    def test_clean_domain_not_probed(self, scan_world, engine):
        profile = next(
            p for p in scan_world.listed_profiles()
            if p.adopter and p.hint_behaviour == "clean" and p.is_cloudflare
            and not p.custom_config and p.intermittency == "none"
            and p.adoption_start_day < 0 and p.deactivation_day is None and not p.www_only
        )
        obs = engine.scan_name(profile.apex, "apex")
        assert engine.probe_connectivity(profile, obs, scan_world.current_date) is None


class TestCampaign:
    def test_campaign_windows(self, dataset):
        days = dataset.days()
        assert days[0] == timeline.STUDY_START
        assert days[-1] <= timeline.STUDY_END
        # The ECH hourly window days are force-included.
        assert timeline.ECH_HOURLY_SCAN_START in dataset.snapshots
        # The DNSSEC snapshot day is force-included.
        assert dataset.dnssec_snapshot_date == timeline.DNSSEC_SNAPSHOT

    def test_ns_window_respected(self, dataset):
        before = [d for d in dataset.days() if d < timeline.SOA_NS_SCAN_START]
        for day in before:
            for obs in dataset.snapshot(day).apex.values():
                assert not obs.ns_names
        after = [d for d in dataset.days() if d >= timeline.NS_IP_WHOIS_SCAN_START]
        assert any(dataset.snapshot(d).ns_observations for d in after)

    def test_connectivity_window_respected(self, dataset):
        for day in dataset.days():
            snapshot = dataset.snapshot(day)
            if day < timeline.CONNECTIVITY_SCAN_START:
                assert not snapshot.connectivity

    def test_ech_observations_collected(self, dataset):
        assert dataset.ech_observations
        hours = {obs.hour for obs in dataset.ech_observations}
        start_hour = timeline.day_index(timeline.ECH_HOURLY_SCAN_START) * 24
        assert all(h >= start_hour for h in hours)

    def test_adoption_counts_consistent(self, dataset):
        for day in dataset.days():
            snapshot = dataset.snapshot(day)
            assert snapshot.apex_https_count == len(snapshot.apex)
            assert snapshot.www_https_count == len(snapshot.www)
            assert 0.10 < snapshot.apex_https_rate() < 0.40

    def test_overlapping_subset_of_union(self, dataset):
        for phase in (1, 2):
            overlap = dataset.overlapping_domains(phase)
            union = dataset.union_domains(phase)
            assert overlap <= union
            assert overlap

    def test_save_load_round_trip(self, dataset, tmp_path):
        path = str(tmp_path / "ds.pkl.gz")
        dataset.save(path)
        loaded = Dataset.load(path)
        assert loaded.days() == dataset.days()
        first = dataset.days()[0]
        assert loaded.snapshot(first).apex_https_count == dataset.snapshot(first).apex_https_count
        assert len(loaded.ech_observations) == len(dataset.ech_observations)

    def test_cache_path_distinct(self, tmp_path):
        a = cache_path(str(tmp_path), 100, "s", 7)
        b = cache_path(str(tmp_path), 200, "s", 7)
        assert a != b
