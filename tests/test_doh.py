"""Tests for DNS-over-HTTPS (RFC 8484) and the EDNS0/DO plumbing."""

import base64

import pytest

from repro.dnscore import rdtypes
from repro.dnscore.message import Message
from repro.dnscore.names import Name
from repro.resolver.doh import CONTENT_TYPE, DohClient, DohServer

from tests.test_resolver import build_internet


@pytest.fixture()
def doh():
    _network, _clock, resolver, _tree = build_internet(sign=True)
    server = DohServer(resolver)
    return server, DohClient(server)


class TestDohServer:
    def test_get_round_trip(self, doh):
        server, client = doh
        response = client.query("example.com.", rdtypes.HTTPS)
        assert response.rcode == rdtypes.NOERROR
        assert response.get_answer("example.com.", rdtypes.HTTPS) is not None

    def test_post_round_trip(self, doh):
        server, _ = doh
        client = DohClient(server, method="POST")
        response = client.query("example.com.", rdtypes.A)
        assert response.get_answer("example.com.", rdtypes.A) is not None

    def test_msg_id_echoed(self, doh):
        server, client = doh
        query = Message.make_query("example.com.", rdtypes.A, 1234)
        encoded = base64.urlsafe_b64encode(query.to_wire()).decode().rstrip("=")
        http = server.handle_get(f"/dns-query?dns={encoded}")
        assert http.status == 200
        assert Message.from_wire(http.body).msg_id == 1234

    def test_ad_bit_passes_through(self, doh):
        _server, client = doh
        response = client.query("example.com.", rdtypes.HTTPS)
        assert response.authenticated_data

    def test_bad_base64(self, doh):
        server, _ = doh
        assert server.handle_get("/dns-query?dns=!!!").status == 400

    def test_missing_param(self, doh):
        server, _ = doh
        assert server.handle_get("/dns-query").status == 400

    def test_wrong_content_type(self, doh):
        server, _ = doh
        assert server.handle_post("/dns-query", "text/plain", b"x").status == 415

    def test_wrong_path(self, doh):
        server, _ = doh
        assert server.handle_post("/other", CONTENT_TYPE, b"x").status == 404

    def test_malformed_dns_body(self, doh):
        server, _ = doh
        assert server.handle_post("/dns-query", CONTENT_TYPE, b"\x00").status == 400

    def test_request_counter(self, doh):
        server, client = doh
        client.query("example.com.", rdtypes.A)
        client.query("example.com.", rdtypes.AAAA)
        assert server.request_count == 2

    def test_servfail_surface(self, doh):
        _server, client = doh
        response = client.query("no-such-tld-at-all.test.", rdtypes.A)
        assert response.rcode in (rdtypes.SERVFAIL, rdtypes.NXDOMAIN)


class TestEdns:
    def test_opt_record_round_trip(self):
        query = Message.make_query("a.com.", rdtypes.HTTPS, 7, want_dnssec=True)
        parsed = Message.from_wire(query.to_wire())
        assert parsed.use_edns
        assert parsed.dnssec_ok
        assert parsed.edns_payload_size == 1232
        assert not parsed.additional  # OPT is not exposed as a normal RRset

    def test_no_edns_by_default(self):
        query = Message.make_query("a.com.", rdtypes.A, 7)
        parsed = Message.from_wire(query.to_wire())
        assert not parsed.use_edns
        assert not parsed.dnssec_ok

    def test_do_bit_gates_rrsigs(self):
        _network, _clock, _resolver, tree = build_internet(sign=True)
        from repro.resolver.authoritative import AuthoritativeServer

        server = AuthoritativeServer("auth")
        server.tree = tree
        plain = server.handle_query(Message.make_query("example.com.", rdtypes.HTTPS, 1))
        assert plain.get_answer("example.com.", rdtypes.RRSIG) is None
        with_do = server.handle_query(
            Message.make_query("example.com.", rdtypes.HTTPS, 2, want_dnssec=True)
        )
        assert with_do.get_answer("example.com.", rdtypes.RRSIG) is not None

    def test_response_mirrors_edns(self):
        _network, _clock, _resolver, tree = build_internet(sign=True)
        from repro.resolver.authoritative import AuthoritativeServer

        server = AuthoritativeServer("auth")
        server.tree = tree
        response = server.handle_query(
            Message.make_query("example.com.", rdtypes.A, 3, want_dnssec=True)
        )
        assert response.use_edns and response.dnssec_ok


class TestFirefoxDohPath:
    def test_firefox_uses_doh_client(self):
        from repro.browser.testbed import Testbed, TEST_DOMAIN

        testbed = Testbed()
        testbed.clear_endpoints()
        testbed.simple_service_zone("1 . alpn=h2")
        testbed.install_web_server()
        before = testbed.doh_server.request_count
        result = testbed.browser("Firefox").navigate(f"https://{TEST_DOMAIN}")
        assert result.success
        assert testbed.doh_server.request_count > before

    def test_chrome_does_not_use_doh(self):
        from repro.browser.testbed import Testbed, TEST_DOMAIN

        testbed = Testbed()
        testbed.clear_endpoints()
        testbed.simple_service_zone("1 . alpn=h2")
        testbed.install_web_server()
        before = testbed.doh_server.request_count
        testbed.browser("Chrome").navigate(f"https://{TEST_DOMAIN}")
        assert testbed.doh_server.request_count == before
