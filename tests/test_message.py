"""Unit tests for DNS message model and codec."""

import pytest

from repro.dnscore import rdtypes
from repro.dnscore.message import FLAG_AD, Message, Question
from repro.dnscore.names import Name
from repro.dnscore.rrset import RRset
from repro.dnscore.wire import WireError


def make_answer_message():
    msg = Message(0x1234)
    msg.is_response = True
    msg.authoritative = True
    msg.questions.append(Question(Name.from_text("a.com."), rdtypes.HTTPS))
    msg.answers.append(RRset.from_text("a.com.", 300, "HTTPS", "1 . alpn=h2,h3"))
    msg.answers.append(RRset.from_text("a.com.", 300, "A", "1.2.3.4"))
    msg.authority.append(RRset.from_text("a.com.", 300, "NS", "ns1.a.com."))
    msg.additional.append(RRset.from_text("ns1.a.com.", 300, "A", "9.9.9.9"))
    return msg


class TestFlags:
    def test_default_flags(self):
        msg = Message()
        assert not msg.is_response
        assert not msg.authenticated_data

    def test_flag_setters(self):
        msg = Message()
        msg.is_response = True
        msg.recursion_desired = True
        msg.recursion_available = True
        msg.authenticated_data = True
        msg.checking_disabled = True
        msg.truncated = True
        msg.authoritative = True
        for attr in (
            "is_response",
            "recursion_desired",
            "recursion_available",
            "authenticated_data",
            "checking_disabled",
            "truncated",
            "authoritative",
        ):
            assert getattr(msg, attr)

    def test_flag_clearing(self):
        msg = Message()
        msg.authenticated_data = True
        msg.authenticated_data = False
        assert not msg.authenticated_data

    def test_make_query(self):
        query = Message.make_query("a.com.", rdtypes.HTTPS, 7)
        assert query.recursion_desired
        assert query.questions[0].rdtype == rdtypes.HTTPS
        assert query.msg_id == 7

    def test_make_response_copies_question(self):
        query = Message.make_query("a.com.", rdtypes.A, 9)
        response = query.make_response()
        assert response.is_response
        assert response.msg_id == 9
        assert response.questions == query.questions


class TestWireRoundTrip:
    def test_full_message(self):
        msg = make_answer_message()
        parsed = Message.from_wire(msg.to_wire())
        assert parsed.msg_id == 0x1234
        assert parsed.is_response
        assert parsed.authoritative
        assert parsed.get_answer("a.com.", rdtypes.HTTPS) is not None
        assert parsed.get_answer("a.com.", rdtypes.A) is not None
        assert len(parsed.authority) == 1
        assert len(parsed.additional) == 1

    def test_ad_bit_round_trip(self):
        msg = make_answer_message()
        msg.authenticated_data = True
        parsed = Message.from_wire(msg.to_wire())
        assert parsed.authenticated_data
        assert parsed.flags & FLAG_AD

    def test_rcode_round_trip(self):
        msg = Message(1)
        msg.is_response = True
        msg.rcode = rdtypes.NXDOMAIN
        assert Message.from_wire(msg.to_wire()).rcode == rdtypes.NXDOMAIN

    def test_query_round_trip(self):
        query = Message.make_query("www.example.com.", rdtypes.AAAA, 55)
        parsed = Message.from_wire(query.to_wire())
        assert not parsed.is_response
        assert parsed.questions[0].name == Name.from_text("www.example.com.")
        assert parsed.questions[0].rdtype == rdtypes.AAAA

    def test_rrset_grouping_on_parse(self):
        msg = Message(1)
        msg.is_response = True
        rrset = RRset.from_text("a.com.", 300, "A", "1.1.1.1", "2.2.2.2")
        msg.answers.append(rrset)
        parsed = Message.from_wire(msg.to_wire())
        assert len(parsed.answers) == 1
        assert len(parsed.answers[0]) == 2

    def test_compression_shrinks_message(self):
        msg = make_answer_message()
        wire = msg.to_wire()
        # Rough sanity: names repeat 5 times; compression must beat naive
        # encoding by a wide margin.
        naive = sum(len(n) for n in [b"\x01a\x03com\x00"] * 5)
        assert len(wire) < 120 + naive

    def test_truncated_header(self):
        with pytest.raises(WireError):
            Message.from_wire(b"\x00\x01")


class TestSectionHelpers:
    def test_get_answer_missing(self):
        msg = make_answer_message()
        assert msg.get_answer("b.com.", rdtypes.A) is None

    def test_answer_rrsets_of_type(self):
        msg = make_answer_message()
        assert len(msg.answer_rrsets_of_type(rdtypes.A)) == 1

    def test_question_equality(self):
        q1 = Question(Name.from_text("a.com."), rdtypes.A)
        q2 = Question(Name.from_text("A.COM."), rdtypes.A)
        assert q1 == q2
        assert hash(q1) == hash(q2)
