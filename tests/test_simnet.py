"""Tests for the simulated Internet: profiles, cohorts, per-day state."""

import datetime

import pytest

from repro.dnscore import rdtypes
from repro.dnscore.names import Name
from repro.simnet import SimConfig, timeline
from repro.simnet.cohorts import (
    ECH_TEST_DOMAINS,
    INTERMIT_MIXED_PROVIDERS,
    INTERMIT_NONE,
    INTERMIT_PROXY_TOGGLE,
    SPECIAL_DOMAINS,
    make_profile,
)
from repro.simnet.domains import (
    build_https_rdatas,
    build_zone,
    current_provider_keys,
    ech_enabled,
    hint_mismatch_active,
    https_configured,
    is_listed,
    serving_addresses,
)
from repro.simnet.providers import CLOUDFLARE, PROVIDERS

CFG = SimConfig(population=2000)
DAY1 = timeline.STUDY_START
MID = datetime.date(2023, 9, 15)


def profiles(n=2000):
    return [make_profile(CFG, i) for i in range(n)]


class TestTimeline:
    def test_day_index_round_trip(self):
        for offset in (0, 10, 100, 300):
            date = timeline.date_of(offset)
            assert timeline.day_index(date) == offset

    def test_epoch_monotonic(self):
        assert timeline.epoch_seconds(DAY1, 1) > timeline.epoch_seconds(DAY1)
        assert timeline.epoch_seconds(MID) > timeline.epoch_seconds(DAY1, 23)

    def test_phases(self):
        assert timeline.phase_of(datetime.date(2023, 7, 31)) == 1
        assert timeline.phase_of(datetime.date(2023, 8, 1)) == 2

    def test_study_days_step(self):
        days = timeline.study_days(7)
        assert days[0] == timeline.STUDY_START
        assert (days[1] - days[0]).days == 7
        assert days[-1] <= timeline.STUDY_END


class TestProfiles:
    def test_deterministic(self):
        assert make_profile(CFG, 42) == make_profile(CFG, 42)

    def test_unique_names(self):
        names = {p.name for p in profiles(500)}
        assert len(names) == 500

    def test_special_domains_planted(self):
        for i, (name, _behaviour) in enumerate(SPECIAL_DOMAINS):
            assert make_profile(CFG, i).name == name

    def test_adoption_fraction_plausible(self):
        population = profiles()
        adopters = sum(p.adopter for p in population)
        assert 0.18 <= adopters / len(population) <= 0.40

    def test_cloudflare_dominates_adopters(self):
        population = [p for p in profiles() if p.adopter]
        cloudflare = sum(p.is_cloudflare for p in population)
        assert cloudflare / len(population) > 0.90

    def test_signed_fraction_small(self):
        population = [p for p in profiles() if p.adopter]
        signed = sum(p.dnssec_signed for p in population)
        assert 0.02 <= signed / len(population) <= 0.15

    def test_stable_domains_more_popular(self):
        population = profiles()
        stable = [p.base_rank for p in population if p.is_stable]
        churny = [p.base_rank for p in population if not p.is_stable]
        assert sum(stable) / len(stable) < sum(churny) / len(churny)

    def test_cf_ns_specials_persistent_mismatch(self):
        profile = next(p for p in profiles(20) if p.name == "cf-ns.com")
        assert profile.provider_key == "cfns"
        assert profile.hint_behaviour == "persistent"

    def test_ech_test_domains_cloudflare(self):
        population = profiles(len(SPECIAL_DOMAINS))
        for name in ECH_TEST_DOMAINS:
            profile = next(p for p in population if p.name == name)
            assert profile.provider_key == "cloudflare"
            assert profile.free_plan


class TestTrancoPresence:
    def test_stable_always_listed_before_change(self):
        population = profiles(300)
        for profile in population:
            if profile.is_stable:
                assert is_listed(profile, CFG, DAY1)

    def test_source_change_exits(self):
        population = [p for p in profiles() if p.exits_at_source_change]
        assert population, "some stable domains must exit at the source change"
        for profile in population[:20]:
            assert is_listed(profile, CFG, datetime.date(2023, 7, 31))
            assert not is_listed(profile, CFG, datetime.date(2023, 8, 1))

    def test_entrants_only_after_change(self):
        population = [p for p in profiles() if p.enters_at_source_change]
        assert population
        for profile in population[:20]:
            assert not is_listed(profile, CFG, datetime.date(2023, 7, 31))


class TestHttpsState:
    def test_nonadopter_never_configured(self):
        profile = next(p for p in profiles() if not p.adopter)
        assert not https_configured(profile, CFG, DAY1)
        assert not https_configured(profile, CFG, timeline.STUDY_END)

    def test_proxy_toggle_intermittent(self):
        togglers = [p for p in profiles() if p.intermittency == INTERMIT_PROXY_TOGGLE]
        assert togglers, "toggle cohort must exist at population 2000"
        profile = togglers[0]
        states = {
            https_configured(profile, CFG, timeline.date_of(d)) for d in range(0, 250, 3)
        }
        assert states == {True, False}

    def test_mixed_provider_has_secondary(self):
        mixed = [p for p in profiles() if p.intermittency == INTERMIT_MIXED_PROVIDERS]
        assert mixed
        keys = current_provider_keys(mixed[0], CFG, MID)
        assert len(keys) == 2
        assert not PROVIDERS[keys[1]].supports_https

    def test_ns_change_loses_https(self):
        movers = [p for p in profiles() if p.ns_change_day is not None]
        if not movers:
            pytest.skip("no ns-change domain at this population")
        profile = movers[0]
        before = timeline.date_of(max(0, profile.ns_change_day - 1))
        after = timeline.date_of(profile.ns_change_day)
        assert current_provider_keys(profile, CFG, before) == [profile.provider_key]
        new_keys = current_provider_keys(profile, CFG, after)
        assert new_keys != [profile.provider_key]
        assert not https_configured(profile, CFG, after)


class TestEchState:
    def cf_default_profile(self):
        return next(
            p for p in profiles()
            if p.is_cloudflare and p.free_plan and not p.custom_config
            and p.intermittency == INTERMIT_NONE and p.adopter
            and p.name not in ECH_TEST_DOMAINS
        )

    def test_ech_on_before_disable(self):
        profile = self.cf_default_profile()
        assert ech_enabled(profile, CFG, datetime.date(2023, 9, 1))

    def test_ech_off_after_disable(self):
        profile = self.cf_default_profile()
        assert not ech_enabled(profile, CFG, datetime.date(2023, 10, 5))

    def test_test_domains_keep_ech(self):
        population = profiles(len(SPECIAL_DOMAINS))
        for name in ECH_TEST_DOMAINS:
            profile = next(p for p in population if p.name == name)
            assert ech_enabled(profile, CFG, datetime.date(2024, 2, 1))


class TestHintsAndAddresses:
    def test_persistent_mismatch_all_period(self):
        profile = next(p for p in profiles(20) if p.name == "cf-ns.com")
        for day in (DAY1, MID, timeline.STUDY_END):
            assert hint_mismatch_active(profile, CFG, day)
            a4, _a6, h4, _h6 = serving_addresses(profile, CFG, day)
            assert a4 != h4

    def test_prefix_mismatch_stops_at_fix(self):
        cohort = [p for p in profiles() if p.hint_behaviour == "pre-fix"]
        assert cohort
        for profile in cohort:
            assert not hint_mismatch_active(profile, CFG, datetime.date(2023, 7, 1))
            assert not hint_mismatch_active(profile, CFG, MID)

    def test_clean_domains_match(self):
        profile = next(
            p for p in profiles() if p.adopter and p.hint_behaviour == "clean" and p.is_cloudflare
        )
        a4, a6, h4, h6 = serving_addresses(profile, CFG, MID)
        assert (a4, a6) == (h4, h6)


class TestRecordSynthesis:
    def test_cloudflare_default_shape(self):
        profile = next(
            p for p in profiles()
            if p.is_cloudflare and not p.custom_config and p.adopter
            and p.intermittency == INTERMIT_NONE and p.provider_key == "cloudflare"
        )
        rdatas = build_https_rdatas(profile, CFG, MID, False, None)
        assert len(rdatas) == 1
        record = rdatas[0]
        assert record.priority == 1
        assert record.target == Name.root()
        assert "h2" in record.params.alpn and "h3" in record.params.alpn
        assert record.params.ipv4hint

    def test_h3_29_before_retirement(self):
        profile = next(
            p for p in profiles()
            if p.is_cloudflare and not p.custom_config and p.adopter
        )
        early = build_https_rdatas(profile, CFG, datetime.date(2023, 5, 15), False, None)
        late = build_https_rdatas(profile, CFG, datetime.date(2023, 6, 15), False, None)
        assert "h3-29" in early[0].params.alpn
        assert "h3-29" not in late[0].params.alpn

    def test_godaddy_alias_mode(self):
        cohort = [
            p for p in profiles() if p.provider_key == "godaddy" and p.noncf_shape == "alias-endpoint"
        ]
        if not cohort:
            pytest.skip("no godaddy domain at this population")
        rdatas = build_https_rdatas(cohort[0], CFG, MID, False, None)
        assert rdatas[0].priority == 0
        assert rdatas[0].target != Name.root()

    def test_nexuspipe_multi_priority(self):
        cohort = [p for p in profiles() if p.noncf_shape == "multi-priority" and p.provider_key == "nexuspipe"]
        if not cohort:
            pytest.skip("no nexuspipe domain at this population")
        rdatas = build_https_rdatas(cohort[0], CFG, MID, False, None)
        priorities = sorted(r.priority for r in rdatas)
        assert priorities == list(range(1, 13))
        assert all(r.params.port for r in rdatas)

    def test_gentoo_draft_alpn(self):
        profile = next(p for p in profiles(20) if p.name == "gentoo.org")
        rdatas = build_https_rdatas(profile, CFG, MID, False, None)
        assert "h3-27" in rdatas[0].params.alpn
        assert "h3-29" in rdatas[0].params.alpn

    def test_err_ee_alias_to_www(self):
        profile = next(p for p in profiles(20) if p.name == "err.ee")
        apex_rdatas = build_https_rdatas(profile, CFG, MID, False, None)
        assert apex_rdatas[0].priority == 0
        assert apex_rdatas[0].target == Name.from_text("www.err.ee.")

    def test_ech_parameter_included(self):
        from repro.ech.keys import ECHKeyManager

        km = ECHKeyManager("cloudflare-ech.com")
        profile = next(
            p for p in profiles()
            if p.is_cloudflare and p.free_plan and not p.custom_config and p.adopter
        )
        rdatas = build_https_rdatas(profile, CFG, datetime.date(2023, 9, 1), False, km.published_wire(0))
        assert rdatas[0].params.ech is not None


class TestZoneBuild:
    def test_zone_has_core_records(self):
        profile = next(
            p for p in profiles()
            if p.adopter and p.is_cloudflare and not p.www_only and p.intermittency == INTERMIT_NONE
        )
        zone = build_zone(profile, CFG, MID, None)
        assert zone.soa is not None
        assert zone.get_rrset(profile.apex, rdtypes.NS) is not None
        assert zone.get_rrset(profile.apex, rdtypes.A) is not None
        assert zone.get_rrset(profile.apex, rdtypes.HTTPS) is not None
        assert zone.get_rrset(profile.www, rdtypes.A) is not None

    def test_signed_zone_when_dnssec(self):
        cohort = [p for p in profiles() if p.dnssec_signed and p.dnssec_sign_day < 0]
        zone = build_zone(cohort[0], CFG, MID, None)
        assert zone.signed
        assert zone.get_rrsigs(cohort[0].apex, rdtypes.SOA)

    def test_www_only_apex_cname(self):
        cohort = [
            p for p in profiles()
            if p.www_only and p.adopter and https_configured(p, CFG, MID)
        ]
        if not cohort:
            pytest.skip("no active www-only domain at this population")
        profile = cohort[0]
        zone = build_zone(profile, CFG, MID, None)
        assert zone.get_rrset(profile.apex, rdtypes.CNAME) is not None
        assert zone.get_rrset(profile.www, rdtypes.HTTPS) is not None
