"""Tests for the assembled World: end-to-end resolution against the
simulated Internet."""

import datetime

import pytest

from repro.dnscore import rdtypes
from repro.dnscore.names import Name
from repro.simnet import timeline
from repro.simnet.domains import mismatch_reachability, serving_addresses

MID = datetime.date(2023, 9, 15)


class TestWorldBasics:
    def test_profiles_built(self, world, sim_config):
        assert len(world.profiles) == sim_config.population

    def test_profile_lookup_by_subname(self, world):
        profile = world.profiles[50]
        assert world.profile_of(profile.www) is profile
        assert world.profile_of(profile.apex) is profile

    def test_tranco_list_ordered_and_plausible(self, world):
        world.set_time(timeline.STUDY_START)
        ranked = world.tranco_list()
        assert 0.5 * len(world.profiles) < len(ranked) <= len(world.profiles)
        assert len(set(ranked)) == len(ranked)

    def test_time_is_monotonic(self, world):
        with pytest.raises(ValueError):
            world.set_time(timeline.STUDY_START - datetime.timedelta(days=1))


class TestWorldResolution:
    def test_adopter_has_https_record(self, world):
        world.set_time(MID)
        profile = next(
            p for p in world.listed_profiles()
            if p.adopter and p.is_cloudflare and p.intermittency == "none"
            and not p.custom_config and not p.www_only
            and p.adoption_start_day < timeline.day_index(MID)
            and p.deactivation_day is None
        )
        response = world.stub.query_https(profile.apex)
        assert response.get_answer(profile.apex, rdtypes.HTTPS) is not None

    def test_nonadopter_has_no_https_record(self, world):
        world.set_time(MID)
        profile = next(p for p in world.listed_profiles() if not p.adopter)
        response = world.stub.query_https(profile.apex)
        assert response.get_answer(profile.apex, rdtypes.HTTPS) is None
        a_response = world.stub.query_a(profile.apex)
        assert a_response.get_answer(profile.apex, rdtypes.A) is not None

    def test_ns_records_resolvable(self, world):
        world.set_time(MID)
        profile = next(
            p for p in world.listed_profiles() if p.adopter and p.provider_key == "cloudflare"
        )
        response = world.stub.query(profile.apex, rdtypes.NS)
        ns_rrset = response.get_answer(profile.apex, rdtypes.NS)
        assert ns_rrset is not None
        ns_name = ns_rrset[0].target
        a_response = world.stub.query(ns_name, rdtypes.A)
        assert a_response.get_answer(ns_name, rdtypes.A) is not None

    def test_signed_domain_gets_ad_bit(self, world):
        world.set_time(MID)
        candidates = [
            p for p in world.listed_profiles()
            if p.adopter and p.dnssec_signed and p.ds_uploaded and p.dnssec_sign_day < 0
            and p.adoption_start_day < timeline.day_index(MID) - 1
            and p.deactivation_day is None and p.intermittency == "none"
        ]
        assert candidates, "need a signed adopter in the test population"
        hit = False
        for profile in candidates[:5]:
            response = world.stub.query_https(profile.apex)
            if response.get_answer(profile.apex, rdtypes.HTTPS) is None:
                continue
            assert response.authenticated_data, profile.name
            assert response.get_answer(profile.apex, rdtypes.RRSIG) is not None
            hit = True
        assert hit

    def test_unsigned_domain_no_ad(self, world):
        world.set_time(MID)
        profile = next(
            p for p in world.listed_profiles()
            if p.adopter and not p.dnssec_signed and p.is_cloudflare
        )
        response = world.stub.query_https(profile.apex)
        assert not response.authenticated_data

    def test_signed_without_ds_no_ad(self, world):
        """§4.5: signed but DS never uploaded → RRSIG present, AD clear."""
        world.set_time(MID)
        candidates = [
            p for p in world.listed_profiles()
            if p.adopter and p.dnssec_signed and not p.ds_uploaded and p.dnssec_sign_day < 0
            and p.deactivation_day is None and p.intermittency == "none"
            and p.adoption_start_day < timeline.day_index(MID) - 1 and not p.www_only
        ]
        if not candidates:
            pytest.skip("no signed-without-DS adopter at this population")
        for profile in candidates[:5]:
            response = world.stub.query_https(profile.apex)
            if response.get_answer(profile.apex, rdtypes.HTTPS) is None:
                continue
            assert response.get_answer(profile.apex, rdtypes.RRSIG) is not None
            assert not response.authenticated_data
            return
        pytest.skip("no active candidate today")


class TestWorldEch:
    def test_ech_present_then_absent(self, sim_config):
        from repro.simnet import World
        from repro.svcb.params import KEY_ECH

        from repro.simnet.cohorts import ECH_TEST_DOMAINS

        world = World(sim_config)
        world.set_time(datetime.date(2023, 9, 1))
        profile = next(
            p for p in world.listed_profiles()
            if p.is_cloudflare and p.free_plan and not p.custom_config and p.adopter
            and p.intermittency == "none" and p.adoption_start_day < 0 and not p.www_only
            and p.deactivation_day is None and p.name not in ECH_TEST_DOMAINS
        )
        response = world.stub.query_https(profile.apex)
        rrset = response.get_answer(profile.apex, rdtypes.HTTPS)
        assert rrset is not None and KEY_ECH in rrset[0].params

        world.set_time(datetime.date(2023, 10, 6))
        response = world.stub.query_https(profile.apex)
        rrset = response.get_answer(profile.apex, rdtypes.HTTPS)
        assert rrset is not None and KEY_ECH not in rrset[0].params

    def test_ech_rotates_hourly(self, sim_config):
        from repro.simnet import World

        world = World(sim_config)
        date = datetime.date(2023, 7, 21)
        world.set_time(date, 0)
        profile = next(
            p for p in world.listed_profiles()
            if p.is_cloudflare and p.free_plan and not p.custom_config and p.adopter
            and p.intermittency == "none" and p.adoption_start_day < 0 and not p.www_only
            and p.deactivation_day is None
        )
        def fetch_ech():
            response = world.stub.query_https(profile.apex)
            rrset = response.get_answer(profile.apex, rdtypes.HTTPS)
            return rrset[0].params.ech

        first = fetch_ech()
        world.set_time(date, 3)  # beyond one 1.26h rotation period
        second = fetch_ech()
        assert first != second


class TestMixedProviderIntermittency:
    def test_direct_queries_disagree(self, world):
        """§4.2.3: one NS returns the HTTPS record, the other does not."""
        from repro.dnscore.message import Message
        from repro.simnet.providers import PROVIDERS

        world.set_time(datetime.date(2023, 10, 20))
        mixed = [
            p for p in world.profiles
            if p.intermittency == "mixed-providers" and p.adopter
            and p.adoption_start_day < timeline.day_index(datetime.date(2023, 10, 20))
            and p.deactivation_day is None
        ]
        if not mixed:
            pytest.skip("no mixed-provider domain at this population")
        profile = mixed[0]
        primary_ip = PROVIDERS[profile.provider_key].server_ip
        secondary_ip = PROVIDERS[profile.secondary_provider_key].server_ip
        q = lambda ip: world.network.send_dns_query(
            ip, Message.make_query(profile.apex, rdtypes.HTTPS, 1)
        )
        primary_answer = q(primary_ip).get_answer(profile.apex, rdtypes.HTTPS)
        secondary_answer = q(secondary_ip).get_answer(profile.apex, rdtypes.HTTPS)
        assert primary_answer is not None
        assert secondary_answer is None


class TestReachability:
    def test_clean_domain_reachable(self, world):
        profile = next(
            p for p in world.profiles if p.adopter and p.hint_behaviour == "clean"
        )
        a4, _a6, _h4, _h6 = serving_addresses(profile, world.config, world.current_date)
        assert world.tls_reachable(profile, a4)

    def test_mismatch_reachability_cohorts(self, world):
        profile = world.profile_by_name("cf-ns.com")
        kind = mismatch_reachability(profile, world.config)
        a4, _a6, h4, _h6 = serving_addresses(profile, world.config, world.current_date)
        a_ok = world.tls_reachable(profile, a4)
        h_ok = world.tls_reachable(profile, h4)
        expectation = {
            "both": (True, True),
            "hint-only": (False, True),
            "a-only": (True, False),
            "neither": (False, False),
        }[kind]
        assert (a_ok, h_ok) == expectation

    def test_unknown_ip_unreachable(self, world):
        profile = world.profiles[0]
        assert not world.tls_reachable(profile, "203.0.113.254")
