"""Shape tests for every §4 analysis, against the shared campaign dataset.

These assert the *qualitative* findings of the paper (directions,
orderings, bands) — the benchmark harness prints the quantitative
comparison.
"""

import datetime

import pytest

from repro.analysis import (
    adoption,
    dnssec_analysis,
    ech_analysis,
    hints,
    intermittent,
    nameservers,
    parameters,
    tranco,
)
from repro.analysis.common import classify_ns_set, ns_is_cloudflare
from repro.simnet import timeline


class TestCommonHelpers:
    def test_cloudflare_ns_detection(self):
        assert ns_is_cloudflare("alice.ns.cloudflare.com")
        assert ns_is_cloudflare("ns1.cf-ns.com.")
        assert not ns_is_cloudflare("ns1.googledomains.com")
        assert not ns_is_cloudflare("evilns.cloudflare.com.attacker.net")

    def test_classify_ns_set(self):
        assert classify_ns_set(["alice.ns.cloudflare.com", "bob.ns.cloudflare.com"]) == "full"
        assert classify_ns_set(["ns1.googledomains.com"]) == "none"
        assert classify_ns_set(["alice.ns.cloudflare.com", "ns1.googledomains.com"]) == "partial"
        assert classify_ns_set([]) is None


class TestAdoption:
    def test_band_and_trends(self, dataset):
        summary = adoption.summarize(dataset)
        assert summary.in_paper_band, "rates must stay within ~20-27%"
        assert summary.dynamic_rising
        assert summary.overlapping_stable_or_declining

    def test_series_cover_all_days(self, dataset):
        series = adoption.dynamic_adoption(dataset)
        assert len(series["apex"].points) == len(dataset.days())
        assert len(series["www"].points) == len(dataset.days())

    def test_www_close_to_apex(self, dataset):
        series = adoption.dynamic_adoption(dataset)
        for (day_a, apex_pct), (_day_w, www_pct) in zip(
            series["apex"].points, series["www"].points
        ):
            assert abs(apex_pct - www_pct) < 5.0


class TestNameServers:
    def test_table2_cloudflare_dominates(self, dataset):
        stats = nameservers.table2_ns_shares(dataset)
        assert stats.full_mean_pct > 95.0
        assert stats.none_mean_pct < 5.0
        assert stats.partial_mean_pct < 1.0
        total = stats.full_mean_pct + stats.none_mean_pct + stats.partial_mean_pct
        assert abs(total - 100.0) < 0.5

    def test_table3_has_entries(self, dataset):
        top = nameservers.table3_top_noncf_providers(dataset)
        assert top
        counts = [count for _org, count in top]
        assert counts == sorted(counts, reverse=True)
        assert "Cloudflare, Inc." not in dict(top)

    def test_fig3_counts_positive(self, dataset):
        points = nameservers.fig3_noncf_provider_counts(dataset)
        assert points and all(count >= 1 for _day, count in points)

    def test_fig10_counts(self, dataset):
        points = nameservers.fig10_noncf_domain_counts(dataset)
        assert points and all(count >= 1 for _day, count in points)

    def test_fig9_ranks(self, dataset):
        ranked = nameservers.fig9_noncf_ranks(dataset)
        assert all(rank >= 1 for _name, rank in ranked)


class TestParameters:
    def test_table4_band(self, dataset):
        result = parameters.table4_default_vs_custom(dataset)
        assert 65.0 <= result.default_pct <= 90.0
        assert abs(result.default_pct + result.customized_pct - 100.0) < 0.01

    def test_priority_stats(self, dataset):
        stats = parameters.priority_target_stats(dataset)
        assert stats.service_mode_share_pct > 95.0
        assert stats.priority_one_share_pct > 90.0
        assert stats.alias_self_target_count >= 1  # newlinesmag.com etc.

    def test_table8_alpn_shape(self, dataset):
        stats = parameters.table8_alpn(dataset)
        assert stats.h2_pct > 90.0
        assert 50.0 < stats.h3_pct <= stats.h2_pct
        assert stats.h3_29_before_pct > 50.0
        assert stats.h3_29_after_pct < 2.0  # retired May 31

    def test_noncf_alpn_lower(self, dataset):
        noncf = parameters.noncf_alpn_shares(dataset)
        overall = parameters.table8_alpn(dataset)
        assert noncf["h2"] < overall.h2_pct
        assert noncf["no_alpn"] > overall.no_alpn_pct


class TestHints:
    def test_fig11_usage_band(self, dataset):
        points = hints.fig11_hint_series(dataset)
        last = points[-1]
        assert last.ipv4_usage_pct > 85.0
        assert last.ipv6_usage_pct > 70.0
        assert last.ipv4_usage_pct >= last.ipv6_usage_pct

    def test_fig11_match_improves_after_fix(self, dataset):
        points = hints.fig11_hint_series(dataset)
        before = [p.ipv4_match_pct for p in points if p.date < timeline.HINT_SYNC_FIX]
        after = [p.ipv4_match_pct for p in points if p.date >= timeline.HINT_SYNC_FIX]
        assert before and after
        assert sum(after) / len(after) > sum(before) / len(before)

    def test_fig12_persistent_domains(self, dataset):
        result = hints.fig12_mismatch_durations(dataset)
        assert "cf-ns.com" in result.persistent_domains
        assert "cf-ns.net" in result.persistent_domains

    def test_connectivity_report_shape(self, dataset):
        report = hints.connectivity_report(dataset)
        assert report.occurrences >= report.distinct_domains >= 1
        assert report.domains_with_unreachable <= report.distinct_domains
        assert (
            report.hint_only_reachable + report.a_only_reachable + report.neither_reachable
            <= report.domains_with_unreachable
        )


class TestEch:
    def test_disable_event(self, dataset):
        event = ech_analysis.detect_disable_event(dataset)
        assert event.matches_paper
        assert event.pre_disable_mean_pct > 50.0
        assert event.post_disable_max_pct < 1.0

    def test_rotation_stats(self, dataset):
        stats = ech_analysis.fig4_rotation(dataset)
        assert stats.distinct_configs > 100  # ~133 generations over 7 days
        assert stats.public_names == ("cloudflare-ech.com",)
        assert 1.1 <= stats.overall_mean_hours <= 1.4

    def test_fig14_signed_small(self, dataset):
        points = ech_analysis.fig14_signed_ech_share(dataset)
        pre = [s for d, s, _v in points if d < timeline.ECH_DISABLE]
        assert pre and max(pre) < 15.0

    def test_all_ech_points_to_cloudflare(self, dataset):
        targets = ech_analysis.noncf_ech_targets(dataset)
        assert set(targets) == {"cloudflare-ech.com"}


class TestDnssec:
    def test_fig5_band(self, dataset):
        points = dnssec_analysis.fig5_signed_series(dataset)
        assert points
        for point in points:
            assert point.signed_pct < 15.0
            assert point.validated_pct <= point.signed_pct

    def test_table9_insecure_pattern(self, dataset):
        rows = {row.category: row for row in dnssec_analysis.table9_validation(dataset)}
        with_https = rows["with HTTPS RR"]
        without = rows["without HTTPS RR"]
        assert with_https.signed > 0 and without.signed > 0
        # The paper's core finding: HTTPS publishers are far more often
        # insecure (missing DS) than non-publishers.
        assert with_https.insecure_pct > without.insecure_pct + 10.0
        cloudflare = rows["- Cloudflare"]
        assert cloudflare.signed >= rows["- Non-Cloudflare"].signed

    def test_registrar_congruence_low(self, dataset):
        congruence = dnssec_analysis.registrar_congruence(dataset)
        assert congruence.signed_https_domains > 0
        assert congruence.congruent_pct < 60.0

    def test_ech_dnssec_overlap_small(self, dataset):
        signed, validated = dnssec_analysis.ech_dnssec_overlap(dataset)
        assert signed < 15.0
        assert validated <= signed


class TestIntermittency:
    def test_report_shape(self, dataset):
        report = intermittent.analyze_intermittency(dataset)
        assert report.intermittent_domains > 0
        assert report.same_ns_domains <= report.intermittent_domains
        assert report.same_ns_cloudflare_only <= report.same_ns_domains
        # Paper: ~98% of the same-NS intermittents are Cloudflare-only.
        if report.same_ns_domains >= 5:
            assert report.same_ns_cloudflare_share > 0.7


class TestTranco:
    def test_fig8_overlapping_more_popular(self, dataset):
        dist = tranco.fig8_rank_distributions(dataset)
        assert dist.overlapping_ranks and dist.non_overlapping_ranks
        assert dist.overlapping_median() < dist.non_overlapping_median()
