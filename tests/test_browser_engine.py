"""Per-browser behaviour tests driving the engine through the testbed."""

import base64

import pytest

from repro.browser.policy import CHROME, EDGE, FIREFOX, SAFARI
from repro.browser.testbed import (
    ALT_WEB_SERVER_IP,
    TEST_DOMAIN,
    Testbed,
    WEB_SERVER_IP,
)
from repro.dnscore import rdtypes


@pytest.fixture()
def testbed():
    return Testbed()


def simple_setup(testbed, rdata="1 . alpn=h2"):
    testbed.clear_endpoints()
    testbed.simple_service_zone(rdata)
    testbed.install_web_server()


class TestUrlForms:
    def test_all_browsers_query_https_rr(self, testbed):
        simple_setup(testbed)
        for name in ("Chrome", "Safari", "Edge", "Firefox"):
            testbed.new_round()
            browser = testbed.browser(name)
            browser.navigate(TEST_DOMAIN)
            assert any(t == rdtypes.HTTPS for _n, t in browser.dns_log), name

    def test_chrome_upgrades_plain_url(self, testbed):
        simple_setup(testbed)
        result = testbed.browser("Chrome").navigate(TEST_DOMAIN)
        assert result.success and result.scheme == "https"

    def test_safari_stays_on_http_for_plain_url(self, testbed):
        simple_setup(testbed)
        result = testbed.browser("Safari").navigate(TEST_DOMAIN)
        assert result.success and result.scheme == "http"
        assert result.port == 80

    def test_safari_uses_record_on_https_url(self, testbed):
        simple_setup(testbed)
        result = testbed.browser("Safari").navigate(f"https://{TEST_DOMAIN}")
        assert result.success and result.scheme == "https"
        assert result.used_https_rr

    def test_firefox_requires_doh(self, testbed):
        simple_setup(testbed)
        firefox = testbed.browser("Firefox")
        firefox.doh_enabled = False
        try:
            testbed.new_round()
            firefox.navigate(TEST_DOMAIN)
            assert not any(t == rdtypes.HTTPS for _n, t in firefox.dns_log)
        finally:
            firefox.doh_enabled = True

    def test_http_url_upgraded_by_chromium(self, testbed):
        simple_setup(testbed)
        result = testbed.browser("Edge").navigate(f"http://{TEST_DOMAIN}")
        assert result.scheme == "https"


class TestAliasMode:
    def alias_setup(self, testbed):
        testbed.clear_endpoints()
        testbed.set_zone_records([
            ("@", "HTTPS", f"0 pool.{TEST_DOMAIN}."),
            ("pool", "A", WEB_SERVER_IP),
        ])
        testbed.install_web_server()

    def test_safari_follows_alias(self, testbed):
        self.alias_setup(testbed)
        result = testbed.browser("Safari").navigate(f"https://{TEST_DOMAIN}")
        assert result.success
        assert result.followed_target == f"pool.{TEST_DOMAIN}"

    @pytest.mark.parametrize("name", ["Chrome", "Edge", "Firefox"])
    def test_others_fail_without_apex_a(self, testbed, name):
        self.alias_setup(testbed)
        result = testbed.browser(name).navigate(f"https://{TEST_DOMAIN}")
        assert not result.success
        assert result.error == "dns_no_address"


class TestServiceTarget:
    def target_setup(self, testbed):
        testbed.clear_endpoints()
        testbed.set_zone_records([
            ("@", "HTTPS", f"1 pool.{TEST_DOMAIN}. alpn=h2"),
            ("@", "A", WEB_SERVER_IP),
            ("pool", "A", ALT_WEB_SERVER_IP),
        ])
        testbed.install_web_server(ip=ALT_WEB_SERVER_IP)
        testbed.install_web_server(ip=WEB_SERVER_IP)

    @pytest.mark.parametrize("name,expected_ip", [
        ("Safari", ALT_WEB_SERVER_IP),
        ("Firefox", ALT_WEB_SERVER_IP),
        ("Chrome", WEB_SERVER_IP),
        ("Edge", WEB_SERVER_IP),
    ])
    def test_target_following(self, testbed, name, expected_ip):
        self.target_setup(testbed)
        result = testbed.browser(name).navigate(f"https://{TEST_DOMAIN}")
        assert result.success
        assert result.ip == expected_ip


class TestPort:
    def test_safari_firefox_use_port(self, testbed):
        testbed.clear_endpoints()
        testbed.simple_service_zone("1 . alpn=h2 port=8443")
        testbed.install_web_server(port=8443)
        for name in ("Safari", "Firefox"):
            testbed.new_round()
            result = testbed.browser(name).navigate(f"https://{TEST_DOMAIN}")
            assert result.success and result.port == 8443, name

    def test_chromium_hard_fails_on_port(self, testbed):
        testbed.clear_endpoints()
        testbed.simple_service_zone("1 . alpn=h2 port=8443")
        testbed.install_web_server(port=8443)
        for name in ("Chrome", "Edge"):
            testbed.new_round()
            result = testbed.browser(name).navigate(f"https://{TEST_DOMAIN}")
            assert not result.success, name

    def test_port_failover_to_443(self, testbed):
        testbed.clear_endpoints()
        testbed.simple_service_zone("1 . alpn=h2 port=8443")
        testbed.install_web_server(port=443)
        for name in ("Safari", "Firefox"):
            testbed.new_round()
            result = testbed.browser(name).navigate(f"https://{TEST_DOMAIN}")
            assert result.success and result.port == 443, name
            assert result.failover_used


class TestHints:
    def hint_setup(self, testbed, hint_alive=True, a_alive=True):
        testbed.clear_endpoints()
        testbed.set_zone_records([
            ("@", "HTTPS", f"1 . alpn=h2 ipv4hint={WEB_SERVER_IP}"),
            ("@", "A", ALT_WEB_SERVER_IP),
        ])
        if hint_alive:
            testbed.install_web_server(ip=WEB_SERVER_IP)
        if a_alive:
            testbed.install_web_server(ip=ALT_WEB_SERVER_IP)

    def test_preferences(self, testbed):
        self.hint_setup(testbed)
        assert testbed.browser("Safari").navigate(f"https://{TEST_DOMAIN}").ip == WEB_SERVER_IP
        testbed.new_round()
        assert testbed.browser("Chrome").navigate(f"https://{TEST_DOMAIN}").ip == ALT_WEB_SERVER_IP

    def test_safari_immediate_failover(self, testbed):
        self.hint_setup(testbed, hint_alive=False)
        result = testbed.browser("Safari").navigate(f"https://{TEST_DOMAIN}")
        assert result.success and result.ip == ALT_WEB_SERVER_IP
        assert result.failover_used and not result.failover_delayed

    def test_firefox_delayed_failover(self, testbed):
        self.hint_setup(testbed, a_alive=False)
        result = testbed.browser("Firefox").navigate(f"https://{TEST_DOMAIN}")
        assert result.success and result.ip == WEB_SERVER_IP

    def test_chromium_hard_fail_when_a_dead(self, testbed):
        self.hint_setup(testbed, a_alive=False)
        for name in ("Chrome", "Edge"):
            testbed.new_round()
            result = testbed.browser(name).navigate(f"https://{TEST_DOMAIN}")
            assert not result.success, name


class TestAlpn:
    @pytest.mark.parametrize("protocol", ["h2", "h3"])
    def test_negotiates_advertised_protocol(self, testbed, protocol):
        testbed.clear_endpoints()
        testbed.simple_service_zone(f"1 . alpn={protocol}")
        testbed.install_web_server(alpn=(protocol,))
        for name in ("Chrome", "Safari", "Edge", "Firefox"):
            testbed.new_round()
            result = testbed.browser(name).navigate(f"https://{TEST_DOMAIN}")
            assert result.success and result.alpn == protocol, name

    def test_firefox_h3_compat_note(self, testbed):
        testbed.clear_endpoints()
        testbed.simple_service_zone("1 . alpn=h3")
        testbed.install_web_server(alpn=("h3",))
        result = testbed.browser("Firefox").navigate(f"https://{TEST_DOMAIN}")
        assert any("h2" in event for event in result.events)

    def test_chromium_ignores_empty_param_record(self, testbed):
        """Chromium disregards an HTTPS RR with no SvcParams at all."""
        testbed.clear_endpoints()
        testbed.simple_service_zone("1 .")
        testbed.install_web_server()
        result = testbed.browser("Chrome").navigate(f"https://{TEST_DOMAIN}")
        assert result.success
        assert not result.used_https_rr or any("ignored" in e for e in result.events)


class TestEchEngine:
    def ech_setup(self, testbed, km, server_keys=None, retry_wire=None):
        wire = km.published_wire(0)
        encoded = base64.b64encode(wire).decode()
        shared_ip = "2.2.2.2"
        testbed.set_zone_records([
            ("@", "HTTPS", f"1 . alpn=h2 ech={encoded}"),
            ("@", "A", shared_ip),
            ("cover", "A", shared_ip),
        ])
        testbed.clear_endpoints()
        testbed.network.unregister_tcp(shared_ip, 443)
        testbed.install_web_server(
            ip=shared_ip,
            cert_names=(TEST_DOMAIN, f"cover.{TEST_DOMAIN}"),
            ech_keypairs=server_keys if server_keys is not None else km.active_keypairs(0),
            ech_retry_wire=retry_wire,
        )

    def test_ech_accepted(self, testbed):
        km = testbed.make_ech_manager()
        self.ech_setup(testbed, km)
        for name in ("Chrome", "Edge", "Firefox"):
            testbed.new_round()
            result = testbed.browser(name).navigate(f"https://{TEST_DOMAIN}")
            assert result.success and result.ech_accepted, name

    def test_safari_never_offers_ech(self, testbed):
        km = testbed.make_ech_manager()
        self.ech_setup(testbed, km)
        result = testbed.browser("Safari").navigate(f"https://{TEST_DOMAIN}")
        assert result.success
        assert not result.ech_offered

    def test_key_mismatch_retry(self, testbed):
        from repro.ech.config import ECHConfigList

        km = testbed.make_ech_manager()
        fresh_keys = [km.keypair_for_generation(9)]
        retry_wire = ECHConfigList([km.config_for_generation(9)]).to_wire()
        self.ech_setup(testbed, km, server_keys=fresh_keys, retry_wire=retry_wire)
        result = testbed.browser("Firefox").navigate(f"https://{TEST_DOMAIN}")
        assert result.success and result.ech_retried and result.ech_accepted
