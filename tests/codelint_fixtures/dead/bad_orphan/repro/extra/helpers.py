"""BAD: the second public helper below is referenced nowhere in the
tree — DEAD01.  (It is deliberately not named in this docstring: any
identifier-shaped mention, even in a string, counts as a reference.)"""


def used_entry():
    return 1


def orphan_report():
    return 2
