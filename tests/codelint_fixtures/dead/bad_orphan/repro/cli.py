"""Fixture entry module (DEAD01 only judges trees containing
``repro.cli``): it reaches one helper and leaves the other one — not
named here, since string mentions count as references — unreachable."""

from .extra import helpers

__all__ = ["main"]


def main():
    return helpers.used_entry()
