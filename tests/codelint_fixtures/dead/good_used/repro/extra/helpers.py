"""GOOD twin: both public helpers are referenced by the entry module."""


def used_entry():
    return 1


def orphan_report():
    return 2
