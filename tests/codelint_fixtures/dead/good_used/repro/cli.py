"""GOOD twin entry module: every public helper is reached."""

from .extra import helpers

__all__ = ["main"]


def main():
    return helpers.used_entry() + helpers.orphan_report()
