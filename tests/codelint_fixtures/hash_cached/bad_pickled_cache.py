"""HASH01 bad fixture: the PR 4 Name bug pattern — __hash__ caches the
seed-dependent hash on self and pickling ships it."""


class CachedNoGetstate:
    """Default pickling carries self._hash into other interpreters."""

    __slots__ = ("_labels", "_hash")

    def __init__(self, labels):
        self._labels = labels
        self._hash = None

    def __hash__(self):
        if self._hash is None:
            self._hash = hash(self._labels)
        return self._hash


class CachedLeakyGetstate:
    """Has a __getstate__, but it still ships the cached hash."""

    def __init__(self, key):
        self._key = key
        self._hash = None

    def __hash__(self):
        if self._hash is None:
            self._hash = hash(self._key)
        return self._hash

    def __getstate__(self):
        return {"_key": self._key, "_hash": self._hash}
