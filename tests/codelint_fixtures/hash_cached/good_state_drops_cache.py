"""HASH01 good fixture: cached hash never crosses the pickle boundary
(the post-PR-4 Name shape), plus an uncached __hash__."""


class CachedWithCleanGetstate:
    __slots__ = ("_labels", "_hash")

    def __init__(self, labels):
        self._labels = labels
        self._hash = None

    def __hash__(self):
        if self._hash is None:
            self._hash = hash(self._labels)
        return self._hash

    def __getstate__(self):
        # Only the labels cross the boundary; the cache is rebuilt lazily.
        return (self._labels,)

    def __setstate__(self, state):
        (self._labels,) = state
        self._hash = None


class Uncached:
    def __init__(self, key):
        self._key = key

    def __hash__(self):
        return hash(self._key)
