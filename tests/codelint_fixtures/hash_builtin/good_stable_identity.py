"""HASH02 good fixture: persisted identity via sha256; hash() only in
__hash__."""

import hashlib


def cache_tag(config):
    return hashlib.sha256(repr(config).encode()).hexdigest()


class Key:
    def __init__(self, parts):
        self.parts = parts

    def __hash__(self):
        return hash(self.parts)  # in-process only, legal
