"""HASH02 bad fixture: builtin hash() feeding persisted identity
(the PR 1 unstable cache-tag class)."""


def cache_tag(config):
    return f"campaign-{hash(repr(config))}"  # HASH02: seed-dependent


def shard_of(name, workers):
    return hash(name) % workers  # HASH02: differs across interpreters
