"""GOOD twin: the SignatureMemo pattern — every shared write holds the
lock, whether the state lives on the instance or at module level."""

import threading
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor

_RESULTS = {}
_RESULTS_LOCK = threading.Lock()


class _MemoCache:
    def __init__(self, limit=16):
        self._lock = threading.Lock()
        self._entries = OrderedDict()
        self.hits = 0
        self._limit = limit

    def put(self, key, value):
        with self._lock:
            self._entries[key] = value
            self.hits += 1
            while len(self._entries) > self._limit:
                self._entries.popitem(last=False)

    def get(self, key):
        with self._lock:
            return self._entries.get(key)


def _record(key, value):
    with _RESULTS_LOCK:
        _RESULTS[key] = value


def _run_all(items):
    with ThreadPoolExecutor(max_workers=2) as pool:
        for key, value in items:
            pool.submit(_record, key, value)
