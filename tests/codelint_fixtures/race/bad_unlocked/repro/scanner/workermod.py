"""BAD: both RACE01 branches.

``_MemoCache`` owns a threading.Lock but writes its shared entries and
counter outside any ``with self._lock:`` — the anti-pattern of
``dnssec/signing.SignatureMemo``.  ``_record`` writes a module-level
dict and is reachable from a ``ThreadPoolExecutor.submit`` site with no
lock anywhere.
"""

import threading
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor

_RESULTS = {}


class _MemoCache:
    def __init__(self, limit=16):
        self._lock = threading.Lock()
        self._entries = OrderedDict()
        self.hits = 0
        self._limit = limit

    def put(self, key, value):
        self._entries[key] = value
        self.hits += 1

    def get(self, key):
        with self._lock:
            return self._entries.get(key)


def _record(key, value):
    _RESULTS[key] = value


def _run_all(items):
    with ThreadPoolExecutor(max_workers=2) as pool:
        for key, value in items:
            pool.submit(_record, key, value)
