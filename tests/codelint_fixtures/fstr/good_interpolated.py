"""FSTR01 good fixture: placeholders present, plain strings plain, and
format specs (which parse as nested placeholder-less f-strings) exempt."""


def mismatch_message(hints, records):
    return f"ipv6hint {sorted(hints)} != AAAA records {sorted(records)}"


def share_message(share):
    return f"{share:.1f}%"  # the :.1f spec must not trip the rule


PLAIN = "no placeholders, no f prefix"
