"""FSTR01 bad fixture: the zone linter's own message bug."""


def mismatch_message(hints, records):
    return f"ipv6hint differs from AAAA records"  # FSTR01: values dropped
