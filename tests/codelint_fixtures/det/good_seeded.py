"""DET01 good fixture: stochastic behaviour derived from the world seed,
time from the timeline (linted as repro.simnet.fixture)."""

import datetime
import hashlib


def digest(seed, *parts):
    material = "|".join([seed] + [str(part) for part in parts])
    return hashlib.sha256(material.encode()).digest()


def churn_day(seed, name, bound):
    return int.from_bytes(digest(seed, name)[:8], "big") % bound


STUDY_START = datetime.date(2023, 5, 8)  # date literals are fine


def parse_day(text):
    return datetime.date.fromisoformat(text)  # parsing is fine
