"""DET01 bad fixture: ambient randomness / wall-clock reads in a
determinism-restricted subsystem (linted as repro.simnet.fixture)."""

import os
import random
import time
import uuid
from datetime import date, datetime


def churn_day(population):
    return random.randrange(population)  # DET01: random.*


def stamp():
    return time.time()  # DET01: wall clock


def today_index():
    return (datetime.now(), date.today())  # DET01 x2: wall clock


def salt():
    return os.urandom(8)  # DET01: OS entropy


def request_id():
    return uuid.uuid4()  # DET01: uuid is seeded from the host
