"""GC01 good fixture: the refcounted helper owns the toggle; gc.collect
and introspection stay legal everywhere."""

import gc

from repro.gcutils import paused_gc


def build_world_fast(factory):
    with paused_gc():
        return factory()


def housekeeping():
    gc.collect()  # collecting is fine; only disable/enable are owned
    return gc.isenabled()
