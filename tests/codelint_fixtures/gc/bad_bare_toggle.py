"""GC01 bad fixture: bare gc toggles outside repro/gcutils.py."""

import gc


def build_world_fast(factory):
    gc.disable()  # GC01
    try:
        return factory()
    finally:
        gc.enable()  # GC01: re-enables inside anyone else's pause window
