"""TAG01 bad fixture: a StudySpec field that never reaches cache_tag."""

import dataclasses

_SCHEDULE_FIELDS = ("start", "end")


@dataclasses.dataclass(frozen=True)
class StudySpec:
    config: object = None
    day_step: int = 7  # TAG01: not in _SCHEDULE_FIELDS/_TAG_EXEMPT/cache_tag
    start: object = None
    end: object = None

    def schedule_overrides(self):
        return {name: getattr(self, name) for name in _SCHEDULE_FIELDS}

    def cache_tag(self):
        return repr(self.schedule_overrides()) + repr(self.config)
