"""TAG01 good fixture: every StudySpec field is accounted for."""

import dataclasses

_SCHEDULE_FIELDS = ("start", "end")

_TAG_EXEMPT = {
    "day_step": "the cache filename embeds day_step",
}


@dataclasses.dataclass(frozen=True)
class StudySpec:
    config: object = None  # read by cache_tag directly
    day_step: int = 7  # exempted with a reason
    start: object = None  # via _SCHEDULE_FIELDS
    end: object = None  # via _SCHEDULE_FIELDS

    def schedule_overrides(self):
        return {name: getattr(self, name) for name in _SCHEDULE_FIELDS}

    def cache_tag(self):
        return repr(self.schedule_overrides()) + repr(self.config)
