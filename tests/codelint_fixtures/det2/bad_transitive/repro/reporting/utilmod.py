"""Non-restricted helper module: DET01 ignores it, but its wall-clock
read taints every restricted caller that reaches it."""

import time


def _stamp():
    return _now_ms()


def _now_ms():
    return time.time() * 1000.0
