"""BAD: a restricted (simnet) helper whose callee chain reaches the
wall clock two calls deep in a non-restricted module — invisible to the
file-local DET01, caught by the project-scope DET02."""

from ..reporting.utilmod import _stamp


def _shape_timing(values):
    return [_stamp() + value for value in values]
