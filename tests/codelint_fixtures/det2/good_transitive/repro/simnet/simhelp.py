"""GOOD twin: the same call shape, but the helper chain derives its
value from the caller-supplied counter instead of the wall clock."""

from ..reporting.utilmod import _stamp


def _shape_timing(counter, values):
    return [_stamp(counter) + value for value in values]
