"""Non-restricted helper module, deterministic: values derive from the
arguments, never from ambient clock or entropy."""


def _stamp(counter):
    return _scale_ms(counter)


def _scale_ms(counter):
    return counter * 1000.0
