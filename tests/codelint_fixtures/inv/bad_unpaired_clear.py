"""INV01 bad fixture: zone-cache clears with no answer-cache
invalidation in the same scope — the fast path keeps serving answers
rendered from the zones just thrown away."""


class World:
    def __init__(self):
        self._zone_cache = {}
        self.answer_cache = object()

    def set_time(self, stamp):
        self._zone_cache.clear()  # INV01: no paired invalidation here

    def elsewhere(self):
        # an invalidation in a *different* method does not pair
        self.answer_cache.invalidate()


def checkin(world):
    world._zone_cache.clear()  # INV01
    return world
