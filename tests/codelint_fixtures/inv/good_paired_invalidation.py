"""INV01 good fixture: every scope that clears the zone cache also
invalidates the layered answer cache (or disarms it wholesale)."""


class World:
    def __init__(self):
        self._zone_cache = {}
        self.answer_cache = object()

    def set_time(self, stamp):
        self._zone_cache.clear()
        self.answer_cache.invalidate()

    def reset(self):
        self._zone_cache.clear()
        self.answer_cache.reset()

    def install_faults(self, schedule):
        self._zone_cache.clear()
        self.set_answer_cache(False)

    def set_answer_cache(self, enabled):
        self.answer_cache.set_enabled(enabled)


def checkin(world):
    world._zone_cache.clear()
    world.answer_cache.invalidate()


def unrelated_clear(records):
    # clearing some other mapping never needs pairing
    records.clear()
    return records
