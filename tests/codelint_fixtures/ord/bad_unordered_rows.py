"""ORD01/ORD02 bad fixture: unordered iteration leaking into rows."""


def rows_from_literal(writer):
    for column in {"b", "a", "c"}:  # ORD01: set literal iteration
        writer.append(column)


def rows_from_set_var(names):
    seen = set(names)
    return [name for name in seen]  # ORD01: set-typed local iterated


def rows_from_setcall(names):
    return tuple(set(names))  # ORD01: tuple(set(...))


def rows_from_keys(mapping):
    out = []
    for key in mapping.keys():  # ORD02: .keys() loop hides the decision
        out.append(key)
    return out
