"""ORD01/ORD02 good fixture: sorted or order-insensitive consumption."""


def rows_sorted(names):
    seen = set(names)
    return [name for name in sorted(seen)]


def commutative_folds(names):
    seen = set(names)
    total = sum(len(name) for name in seen)  # order-insensitive reducer
    return total, all(name for name in seen), max(seen), len(seen)


def membership_only(names, probe):
    seen = set(names)
    return probe in seen


def dict_iteration(mapping):
    return [key for key in mapping]  # mappings iterate in insertion order


def reassigned_is_not_a_set(names):
    values = set(names)
    values = sorted(values)
    return [v for v in values]
