"""Upper-layer module the bad fixture wrongly reaches down from."""


def _frame(value):
    return [value]
