"""BAD: the wire-format layer (bottom of the stack) importing the
campaign driver layer above it — LAYER01 layering violation."""

from ..scanner import runner


def _encode(value):
    return runner._frame(value)
