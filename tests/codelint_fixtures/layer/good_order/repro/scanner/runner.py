"""GOOD twin: the upper layer importing downward is the allowed
direction."""

from ..dnscore import wiremod


def _run(value):
    return wiremod._encode(value)
