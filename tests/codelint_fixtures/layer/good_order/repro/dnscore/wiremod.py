"""GOOD twin: the bottom layer exports; it imports nothing upward."""


def _encode(value):
    return bytes([value % 256])
