"""BAD: a devtools module importing from the product tree — the linter
must never depend on the code it lints."""

from repro.simnet.world import World


def _peek():
    return World
