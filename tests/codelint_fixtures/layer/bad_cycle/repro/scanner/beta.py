"""The other half of the cycle."""

from . import alpha


def _pong(value):
    return alpha._ping(value) if value else value
