"""BAD: half of a top-level import cycle inside one subsystem —
LAYER01 reports the cycle once per edge."""

from . import beta


def _ping(value):
    return beta._pong(value)
