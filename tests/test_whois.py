"""Tests for the WHOIS registry simulation."""

from repro.whois import WhoisClient, WhoisRegistry, build_default_registry


class TestRegistry:
    def test_provider_blocks(self):
        registry = build_default_registry()
        assert registry.lookup("173.245.58.20").org == "Cloudflare, Inc."
        assert registry.lookup("216.239.32.10").org == "Google LLC"
        assert registry.lookup("97.74.100.10").org == "GoDaddy.com, LLC"

    def test_anycast_blocks(self):
        registry = build_default_registry()
        assert registry.lookup("104.17.42.42").org == "Cloudflare, Inc."
        assert "China" in registry.lookup("162.159.1.1").org

    def test_longest_prefix_wins(self):
        registry = WhoisRegistry()
        registry.add_block("10.0.0.0/8", "Big Org")
        registry.add_block("10.1.0.0/16", "Small Org")
        assert registry.lookup("10.1.2.3").org == "Small Org"
        assert registry.lookup("10.2.2.3").org == "Big Org"

    def test_byoip_masks_operator(self):
        registry = WhoisRegistry()
        registry.add_block("10.0.0.0/8", "Cloud Provider")
        registry.add_byoip("10.5.0.0/24", "Original Owner Inc")
        assert registry.lookup("10.5.0.9").org == "Original Owner Inc"

    def test_unallocated(self):
        registry = WhoisRegistry()
        assert registry.lookup("192.0.2.1").org == "Unallocated"

    def test_bad_ip(self):
        registry = build_default_registry()
        assert registry.lookup("not-an-ip") is None

    def test_ipv6_cloudflare(self):
        registry = build_default_registry()
        assert registry.lookup("2606:4700::1").org == "Cloudflare, Inc."


class TestClient:
    def test_caching(self):
        client = WhoisClient(build_default_registry())
        client.lookup("104.16.1.1")
        client.lookup("104.16.1.1")
        assert client.lookup_count == 1

    def test_distinct_ips_counted(self):
        client = WhoisClient(build_default_registry())
        client.lookup("104.16.1.1")
        client.lookup("104.16.1.2")
        assert client.lookup_count == 2
