"""Unit tests for RFC 9460 SvcParams."""

import pytest

from repro.svcb.params import (
    Alpn,
    Ech,
    Ipv4Hint,
    Ipv6Hint,
    KEY_ALPN,
    KEY_ECH,
    KEY_IPV4HINT,
    KEY_MANDATORY,
    KEY_PORT,
    Mandatory,
    NoDefaultAlpn,
    OpaqueParam,
    Port,
    SvcParamError,
    SvcParams,
    key_to_name,
    name_to_key,
    param_from_wire,
)


class TestKeyNames:
    def test_known_names(self):
        assert key_to_name(1) == "alpn"
        assert name_to_key("ech") == 5

    def test_unknown_key_syntax(self):
        assert key_to_name(667) == "key667"
        assert name_to_key("key667") == 667

    def test_bad_key_name(self):
        with pytest.raises(SvcParamError):
            name_to_key("frobnicate")

    def test_key_out_of_range(self):
        with pytest.raises(SvcParamError):
            name_to_key("key70000")


class TestAlpn:
    def test_wire_round_trip(self):
        param = Alpn(["h2", "h3"])
        assert Alpn.from_wire_value(param.to_wire_value()) == param

    def test_text(self):
        assert Alpn(["h2", "h3"]).to_text() == "alpn=h2,h3"

    def test_text_round_trip_with_escaped_comma(self):
        param = Alpn(["we,ird"])
        assert Alpn.from_text_value(param.value_to_text()) == param

    def test_empty_list_rejected(self):
        with pytest.raises(SvcParamError):
            Alpn([])

    def test_empty_protocol_rejected(self):
        with pytest.raises(SvcParamError):
            Alpn([""])

    def test_malformed_wire(self):
        with pytest.raises(SvcParamError):
            Alpn.from_wire_value(b"\x05h2")  # length overruns


class TestPort:
    def test_round_trip(self):
        assert Port.from_wire_value(Port(8443).to_wire_value()).port == 8443

    def test_range(self):
        with pytest.raises(SvcParamError):
            Port(70000)

    def test_wire_length(self):
        with pytest.raises(SvcParamError):
            Port.from_wire_value(b"\x01")

    def test_text(self):
        assert Port(443).to_text() == "port=443"


class TestHints:
    def test_ipv4_round_trip(self):
        param = Ipv4Hint(["1.2.3.4", "5.6.7.8"])
        assert Ipv4Hint.from_wire_value(param.to_wire_value()) == param

    def test_ipv6_round_trip(self):
        param = Ipv6Hint(["2606:4700::1"])
        assert Ipv6Hint.from_wire_value(param.to_wire_value()) == param

    def test_ipv6_normalized(self):
        assert Ipv6Hint(["2606:4700:0:0::1"]).addresses == ("2606:4700::1",)

    def test_bad_address(self):
        with pytest.raises(Exception):
            Ipv4Hint(["1.2.3.999"])

    def test_bad_wire_length(self):
        with pytest.raises(SvcParamError):
            Ipv4Hint.from_wire_value(b"\x01\x02\x03")

    def test_empty_rejected(self):
        with pytest.raises(SvcParamError):
            Ipv4Hint([])


class TestMandatory:
    def test_round_trip(self):
        param = Mandatory([KEY_ALPN, KEY_IPV4HINT])
        assert Mandatory.from_wire_value(param.to_wire_value()) == param

    def test_must_not_include_itself(self):
        with pytest.raises(SvcParamError):
            Mandatory([KEY_MANDATORY])

    def test_must_be_sorted_unique(self):
        with pytest.raises(SvcParamError):
            Mandatory([KEY_IPV4HINT, KEY_ALPN])
        with pytest.raises(SvcParamError):
            Mandatory([KEY_ALPN, KEY_ALPN])

    def test_text(self):
        assert Mandatory([KEY_ALPN]).to_text() == "mandatory=alpn"

    def test_mandatory_key_must_be_present_in_params(self):
        with pytest.raises(SvcParamError):
            SvcParams([Mandatory([KEY_PORT]), Alpn(["h2"])])

    def test_mandatory_satisfied(self):
        params = SvcParams([Mandatory([KEY_PORT]), Port(443)])
        assert params.mandatory_keys == (KEY_PORT,)


class TestNoDefaultAlpn:
    def test_empty_value(self):
        assert NoDefaultAlpn().to_wire_value() == b""
        assert NoDefaultAlpn().to_text() == "no-default-alpn"

    def test_nonempty_rejected(self):
        with pytest.raises(SvcParamError):
            NoDefaultAlpn.from_wire_value(b"x")


class TestEch:
    def test_base64_round_trip(self):
        param = Ech(b"\x00\x01binary")
        decoded = Ech.from_text_value(param.value_to_text())
        assert decoded.config_list == b"\x00\x01binary"

    def test_bad_base64(self):
        with pytest.raises(SvcParamError):
            Ech.from_text_value("!!!not-base64!!!")

    def test_empty_rejected(self):
        with pytest.raises(SvcParamError):
            Ech(b"")


class TestSvcParams:
    def test_wire_round_trip(self):
        params = SvcParams([Alpn(["h2", "h3"]), Port(8443), Ipv4Hint(["1.2.3.4"])])
        assert SvcParams.from_wire(params.to_wire()) == params

    def test_text_round_trip(self):
        params = SvcParams([Alpn(["h2"]), Ipv4Hint(["1.2.3.4"])])
        assert SvcParams.from_text(params.to_text()) == params

    def test_keys_sorted_in_wire(self):
        params = SvcParams([Port(443), Alpn(["h2"])])
        wire = params.to_wire()
        # alpn (key 1) must precede port (key 3).
        assert wire[0:2] == b"\x00\x01"

    def test_duplicate_key_rejected(self):
        with pytest.raises(SvcParamError):
            SvcParams([Port(1), Port(2)])

    def test_wire_unsorted_keys_rejected(self):
        params = SvcParams([Alpn(["h2"]), Port(443)])
        wire = bytearray(params.to_wire())
        # Swap the two params to violate ordering.
        alpn_len = 4 + 3
        swapped = bytes(wire[alpn_len:]) + bytes(wire[:alpn_len])
        with pytest.raises(SvcParamError):
            SvcParams.from_wire(swapped)

    def test_unknown_key_round_trips_opaque(self):
        params = SvcParams.from_wire(b"\x02\x9a\x00\x03abc")
        param = list(params)[0]
        assert isinstance(param, OpaqueParam)
        assert params.to_wire() == b"\x02\x9a\x00\x03abc"

    def test_effective_alpn_includes_default(self):
        params = SvcParams([Alpn(["h2"])])
        assert params.effective_alpn() == ("h2", "http/1.1")

    def test_effective_alpn_no_default(self):
        params = SvcParams([Alpn(["h2"]), NoDefaultAlpn()])
        assert params.effective_alpn() == ("h2",)

    def test_effective_alpn_empty(self):
        assert SvcParams().effective_alpn() == ("http/1.1",)

    def test_accessors(self):
        params = SvcParams(
            [Alpn(["h2"]), Port(99), Ipv4Hint(["1.1.1.1"]), Ipv6Hint(["::1"]), Ech(b"x")]
        )
        assert params.alpn == ("h2",)
        assert params.port == 99
        assert params.ipv4hint == ("1.1.1.1",)
        assert params.ipv6hint == ("::1",)
        assert params.ech == b"x"

    def test_truncated_wire(self):
        with pytest.raises(SvcParamError):
            SvcParams.from_wire(b"\x00\x01\x00\x05h2")

    def test_quoted_text_value(self):
        params = SvcParams.from_text('alpn="h2,h3"')
        assert params.alpn == ("h2", "h3")

    def test_unterminated_quote(self):
        with pytest.raises(SvcParamError):
            SvcParams.from_text('alpn="h2')
