#!/usr/bin/env python
"""DNSSEC for HTTPS records: the §4.5 failure modes, end to end.

Builds a root -> com -> domain chain and walks through the four postures
the paper measures, showing what a validating resolver returns (AD bit,
SERVFAIL) in each case:

1. unsigned zone                      -> insecure (no AD)
2. signed, DS uploaded                -> secure (AD set)
3. signed, DS missing at the parent   -> insecure (the paper's dominant
   failure: third-party DNS operator, registrar never gets the DS)
4. signed, corrupted RRSIG            -> bogus (SERVFAIL)

Run:  python examples/dnssec_deployment.py
"""

from repro.dnscore import Name, rdtypes
from repro.dnssec import ChainValidator
from repro.resolver import AuthoritativeServer, Network, RecursiveResolver, SimClock
from repro.zones import Zone, ZoneTree

NOW = 1_000_000


def build(posture: str):
    network = Network()
    clock = SimClock(NOW)
    root = Zone(Name.root())
    root.ensure_soa()
    root.delegate(Name.from_text("com."), [Name.from_text("ns.tld.")])
    root.add_record("ns.tld.", "A", "192.5.6.30")
    com = Zone(Name.from_text("com."))
    com.ensure_soa()
    com.delegate(Name.from_text("shop.com."), [Name.from_text("ns1.shop.com.")])
    com.add_record("ns1.shop.com.", "A", "10.0.0.1")
    shop = Zone(Name.from_text("shop.com."))
    shop.ensure_soa()
    shop.add_record("shop.com.", "HTTPS", "1 . alpn=h2,h3")
    shop.add_record("shop.com.", "A", "10.0.0.9")
    shop.add_record("ns1.shop.com.", "A", "10.0.0.1")

    if posture != "unsigned":
        shop.sign(NOW)
    com.sign(NOW)
    root.sign(NOW)

    tree = ZoneTree()
    for zone in (root, com, shop):
        tree.add_zone(zone)
    tree.upload_ds(Name.from_text("com."), NOW)
    if posture in ("secure", "bogus"):
        tree.upload_ds(Name.from_text("shop.com."), NOW)
    if posture == "bogus":
        shop.corrupt_signature(Name.from_text("shop.com."), rdtypes.HTTPS)

    for ip, zones in (("198.41.0.4", [root]), ("192.5.6.30", [com]), ("10.0.0.1", [shop])):
        server = AuthoritativeServer(ip)
        for zone in zones:
            server.tree.add_zone(zone)
        network.register_dns(ip, server)

    resolver = RecursiveResolver(
        "validating", network, ["198.41.0.4"], clock, validator=ChainValidator(tree)
    )
    return resolver


def main() -> None:
    postures = [
        ("unsigned", "zone publishes no DNSKEY at all"),
        ("secure", "signed and DS uploaded to the registry"),
        ("no-ds", "signed, but the DS never reached the parent zone"),
        ("bogus", "signed, but the RRSIG is corrupted"),
    ]
    print("posture      rcode     AD   RRSIG-in-answer   (what the paper's scanner records)")
    for posture, description in postures:
        resolver = build(posture)
        response = resolver.resolve("shop.com.", rdtypes.HTTPS)
        rcode = {0: "NOERROR", 2: "SERVFAIL", 3: "NXDOMAIN"}.get(response.rcode, response.rcode)
        has_sig = response.get_answer(Name.from_text("shop.com."), rdtypes.RRSIG) is not None
        print(f"{posture:<12} {rcode:<9} {str(response.authenticated_data):<5}"
              f"{str(has_sig):<17} {description}")
    print(
        "\nTable 9 context: ~49% of signed HTTPS-publishing domains sit in the"
        "\n'no-ds' row — signed yet unvalidatable — versus ~24% of non-publishers."
    )


if __name__ == "__main__":
    main()
