#!/usr/bin/env python
"""The §7 proposal, implemented: Certbot-style automation for HTTPS RRs.

Creates a zone with every misconfiguration the paper measures in the
wild, lints it, lets the autopilot repair what is mechanically fixable,
and shows the before/after against a validating browser client.

Run:  python examples/https_rr_autopilot.py
"""

import base64

from repro.dnscore import Name, rdtypes
from repro.ech import ECHKeyManager
from repro.manage import AutoPilot, lint_zone
from repro.zones import Zone


def main() -> None:
    km = ECHKeyManager("cover.shop.example", seed=b"autopilot", rotation_hours=1.26)
    stale_ech = base64.b64encode(km.published_wire(0)).decode()

    zone = Zone(Name.from_text("shop.example."))
    zone.ensure_soa()
    zone.add_record("shop.example.", "A", "192.0.2.10")
    zone.add_record("shop.example.", "AAAA", "2001:db8::10")
    # Every §4 hazard at once: hints that drifted from the A/AAAA records
    # (the server moved) and an ECH key published hours ago.
    zone.add_record(
        "shop.example.", "HTTPS",
        "1 . alpn=h2,h3 ipv4hint=203.0.113.9 ipv6hint=2001:db8::dead "
        f"ech={stale_ech}",
    )
    zone.add_record("promo.shop.example.", "HTTPS", "0 .")  # broken alias
    zone.sign(1_000)

    now_hour = 9  # hours since the ECH key above was published

    print("== Lint (before) ==")
    for finding in lint_zone(zone, ech_manager=km, current_hour=now_hour):
        print(" ", finding)

    print("\n== Autopilot run ==")
    pilot = AutoPilot(zone, ech_manager=km)
    for action in pilot.run(current_hour=now_hour, resign_at=2_000):
        print(" ", action)

    print("\n== Lint (after) ==")
    remaining = pilot.remaining_findings(current_hour=now_hour)
    if remaining:
        for finding in remaining:
            print("  still needs a human:", finding)
    record = zone.get_rrset(zone.apex, rdtypes.HTTPS)[0]
    print("\nfinal record:", record.to_text()[:100], "...")
    print("hints now mirror A/AAAA:", record.params.ipv4hint, record.params.ipv6hint)
    print("ECH config generation:", km.generation_for_hour(now_hour),
          "(current)" if record.params.ech == km.published_wire(now_hour) else "(stale!)")
    print("\nRun this on a cron shorter than the record TTL and the paper's"
          "\nmismatch windows (§4.3.5) and stale-key hazards (§4.4.2) vanish.")


if __name__ == "__main__":
    main()
