#!/usr/bin/env python
"""Reproduce the client-side browser experiments (§5).

Sets up the paper's testbed — our own domain, authoritative name server,
and ECH-capable web server — and walks Chrome, Safari, Edge, and Firefox
through the full experiment matrix, regenerating Tables 6 and 7.

Run:  python examples/browser_testbed.py
"""

from repro.browser import Testbed, TEST_DOMAIN, build_table6, build_table7


def narrate_one_navigation() -> None:
    print("== A single instrumented page load ==")
    testbed = Testbed()
    testbed.clear_endpoints()
    testbed.simple_service_zone("1 . alpn=h2 port=8443")
    testbed.install_web_server(port=8443)

    for name in ("Firefox", "Chrome"):
        testbed.new_round()
        browser = testbed.browser(name)
        result = browser.navigate(f"https://{TEST_DOMAIN}")
        print(f"\n{name} -> https://{TEST_DOMAIN}  (record: 1 . alpn=h2 port=8443)")
        print(f"  DNS queries: {[(n, t) for n, t in browser.dns_log]}")
        for event in result.events:
            print(f"  - {event}")
        status = f"connected to {result.ip}:{result.port} over {result.alpn}" if result.success else f"FAILED: {result.error}"
        print(f"  => {status}")


def ech_retry_demo() -> None:
    print("\n== ECH key mismatch and the retry mechanism (§5.3.1-(3)) ==")
    import base64

    from repro.ech.config import ECHConfigList

    testbed = Testbed()
    km = testbed.make_ech_manager()
    stale_wire = km.published_wire(0)  # what a resolver cache would hold
    current_keys = [km.keypair_for_generation(9)]  # what the server rotated to
    retry_wire = ECHConfigList([km.config_for_generation(9)]).to_wire()

    encoded = base64.b64encode(stale_wire).decode()
    testbed.set_zone_records([
        ("@", "HTTPS", f"1 . alpn=h2 ech={encoded}"),
        ("@", "A", "2.2.2.2"),
        ("cover", "A", "2.2.2.2"),
    ])
    testbed.clear_endpoints()
    testbed.install_web_server(
        ip="2.2.2.2",
        cert_names=(TEST_DOMAIN, f"cover.{TEST_DOMAIN}"),
        ech_keypairs=current_keys,
        ech_retry_wire=retry_wire,
    )
    result = testbed.browser("Chrome").navigate(f"https://{TEST_DOMAIN}")
    print(f"  stale ECH config in DNS, fresh key on the server:")
    for event in result.events:
        print(f"  - {event}")
    print(f"  => success={result.success}, ech_accepted={result.ech_accepted}, "
          f"retried={result.ech_retried}")


def main() -> None:
    narrate_one_navigation()
    ech_retry_demo()
    print("\n== Table 6: HTTPS RR support matrix ==")
    print(build_table6().render())
    print("\n== Table 7: ECH support and failover ==")
    print(build_table7().render())
    print("\nLegend: ● full support  ◐ fetched but not utilized  ○ no support")


if __name__ == "__main__":
    main()
