#!/usr/bin/env python
"""Quickstart: the core HTTPS-RR API in five minutes.

Covers: building/parsing HTTPS records (RFC 9460), serving them from an
authoritative zone, resolving them through a recursive resolver over the
simulated network, and reading the SvcParams a client would use.

Run:  python examples/quickstart.py
"""

from repro.dnscore import Message, Name, rdtypes
from repro.dnscore.rdata import HTTPSRdata, rdata_from_text
from repro.resolver import (
    AuthoritativeServer,
    Network,
    RecursiveResolver,
    SimClock,
    StubResolver,
)
from repro.svcb import Alpn, Ipv4Hint, Port, SvcParams
from repro.zones import Zone


def build_records() -> None:
    print("== 1. HTTPS records: presentation text <-> typed objects <-> wire ==")
    # Parse zone-file syntax (this is Cloudflare's default proxied record).
    record = rdata_from_text(
        rdtypes.HTTPS, "1 . alpn=h2,h3 ipv4hint=104.16.1.1 ipv6hint=2606:4700::1"
    )
    print("parsed:        ", record.to_text())
    print("mode:          ", "ServiceMode" if record.is_service_mode else "AliasMode")
    print("effective alpn:", record.params.effective_alpn())

    # Or build programmatically with typed SvcParams.
    custom = HTTPSRdata(
        1,
        Name.root(),
        SvcParams([Alpn(["h2"]), Port(8443), Ipv4Hint(["192.0.2.1"])]),
    )
    wire = custom.wire_bytes()
    print(f"built:          {custom.to_text()}  ({len(wire)} wire octets)")


def serve_and_resolve() -> None:
    print("\n== 2. Serve a zone and resolve it recursively ==")
    network = Network()
    clock = SimClock(1_000_000)

    # Root zone delegating to our domain (a two-level toy Internet).
    root = Zone(Name.root())
    root.ensure_soa()
    root.delegate(Name.from_text("example.com."), [Name.from_text("ns1.example.com.")])
    root.add_record("ns1.example.com.", "A", "10.0.0.1")

    zone = Zone(Name.from_text("example.com."))
    zone.ensure_soa()
    zone.add_record("example.com.", "HTTPS", "1 . alpn=h2,h3 ipv4hint=10.0.0.9")
    zone.add_record("example.com.", "A", "10.0.0.9")
    zone.add_record("ns1.example.com.", "A", "10.0.0.1")

    root_server = AuthoritativeServer("root")
    root_server.tree.add_zone(root)
    our_server = AuthoritativeServer("ns1.example.com")
    our_server.tree.add_zone(zone)
    network.register_dns("198.41.0.4", root_server)
    network.register_dns("10.0.0.1", our_server)

    resolver = RecursiveResolver("resolver", network, ["198.41.0.4"], clock)
    stub = StubResolver([resolver])

    response = stub.query_https("example.com.")
    rrset = response.get_answer(Name.from_text("example.com."), rdtypes.HTTPS)
    print("answer:", rrset.to_text())
    record = rrset[0]
    print("a client would connect with:")
    print("  alpn      :", record.params.effective_alpn())
    print("  ipv4 hints:", record.params.ipv4hint)
    print(f"({network.dns_query_count} queries on the wire, then cache hits)")
    stub.query_https("example.com.")
    print(f"after a repeat query: still {network.dns_query_count} — served from cache")


def main() -> None:
    build_records()
    serve_and_resolve()


if __name__ == "__main__":
    main()
