#!/usr/bin/env python
"""Run a miniature version of the paper's server-side study (§4).

Builds a small simulated Internet, runs the daily scan campaign over the
full May 2023 – Mar 2024 window (sampled monthly so this finishes in
seconds), and prints the headline analyses: adoption (Fig 2), name
servers (Table 2), default-vs-custom configs (Table 4), the ECH disable
event (Fig 13), key-rotation cadence (Fig 4), and DNSSEC (Table 9).

The campaign is driven through the unified Study API
(:mod:`repro.study`): a declarative :class:`~repro.study.StudySpec`
names *what* is measured (world config + schedule — the dataset's cache
identity) and an :class:`~repro.study.ExecutionPlan` names *how* it runs
(workers, batching, checkpointing — guaranteed not to change the
result).

Run:  python examples/measurement_study.py [population]

Pass ``--continuous`` to also walk through the paper's "longstanding
framework" mode: the same spec collected as arriving day-slice ×
domain-shard increments against an on-disk checkpoint, interrupted
mid-collection, resumed with ``Study.resume()``, checked value-equal to
the one-shot run, and published with ``Study.release()`` (dataset
snapshot + figure CSVs + validated QA manifest).

Pass ``--chaos`` to run a chaos scenario study: the committed fault
schedule ``examples/chaos_scenario.json`` (server outages, lame
delegations, timeouts, DNSSEC breakage, ECH key desync, stale hints —
see :mod:`repro.simnet.faults` for the JSON vocabulary) is injected via
``StudySpec(scenario=...)``, and the resulting anomalies are attributed
back to the injected faults vs the world's organic misbehaviour
(:mod:`repro.analysis.attribution`). The CLI equivalent is
``repro-scan scan --scenario examples/chaos_scenario.json``.
"""

import os
import sys
import tempfile

from repro.analysis import adoption, dnssec_analysis, ech_analysis, nameservers, parameters
from repro.reporting import render_comparison, render_series, render_table
from repro.scanner import CollectionInterrupted
from repro.simnet import SimConfig
from repro.study import ExecutionPlan, Study, StudySpec, validate_release


def continuous_walkthrough(spec: StudySpec, one_shot, workdir: str) -> None:
    """Collect the same spec incrementally: increments arrive, the
    collection is "killed" partway, ``resume()`` finishes it from the
    checkpoint, the folded result equals the one-shot dataset, and
    ``release()`` publishes it."""
    plan = ExecutionPlan(
        continuous=True,
        workers=2,                 # two domain shards on a warm thread pool
        days_per_increment=3,      # three scan days per arriving day-slice
        max_increments=3,          # "crash" after three increments
        executor="thread",
        cache_dir=os.path.join(workdir, "cache-continuous"),
        checkpoint_dir=os.path.join(workdir, "checkpoint"),
        release_dir=os.path.join(workdir, "releases"),
    )
    print("\ncontinuous collection walkthrough")
    print(f"  checkpoint: {plan.checkpoint_dir}")

    # One Study session spans the interrupt and the resume: its worker
    # pool (and the workers' warm worlds) survives the "crash".
    with Study(spec, plan) as study:
        try:
            study.run(progress=lambda msg: print(f"  {msg}"))
        except CollectionInterrupted as exc:
            print(f"  simulated crash: {exc}")
        longitudinal = study.resume(progress=lambda msg: print(f"  {msg}"))
        print(f"  resumed and finished: {len(longitudinal.days())} scan days, "
              f"stats {longitudinal.run_stats.summary()}")
        print(f"  value-equal to the one-shot campaign: {longitudinal == one_shot}")

        release_dir = study.release("v2024.03")
        manifest = validate_release(release_dir)
        print(f"  released {manifest['tag']!r} to {release_dir}: "
              f"{len(manifest['files']) + 1} files, complete={manifest['complete']}, "
              f"coverage gaps={manifest['coverage_gaps'] or 'none'}")


def chaos_walkthrough(workdir: str) -> None:
    """Inject the committed example fault schedule into a small study
    and join the observed anomalies back against it: every in-window
    fault must account for something, everything unclaimed is organic."""
    from repro.analysis import attribution
    from repro.analysis.ech_analysis import table7_failover_split
    from repro.analysis.intermittent import intermittency_injected_split
    from repro.simnet.faults import FaultSchedule

    path = os.path.join(os.path.dirname(__file__), "chaos_scenario.json")
    scenario = FaultSchedule.load(path)
    # The schedule's targets are verified capable at this population: a
    # zone fault on a domain without the feature (e.g. DNSSEC breakage
    # on an unsigned zone) silently no-ops.
    spec = StudySpec(
        SimConfig(population=120), day_step=28, ech_sample=20, scenario=scenario
    )
    print("\nchaos scenario walkthrough")
    print(f"  schedule {scenario.name!r}: {len(scenario.specs)} scheduled faults")
    print("  (the scenario joins the cache tag: faulted datasets never "
          "alias the fault-free study)")
    with Study(spec, ExecutionPlan(cache_dir=os.path.join(workdir, "cache-chaos"))) as study:
        dataset = study.run()
    stats = dataset.run_stats
    print(f"  what the faults cost the clients: {stats.timeouts} timeouts, "
          f"{stats.retries} retries, {stats.unreachables} dead hosts")
    report = attribution.attribute(dataset, scenario, spec.config)
    print("  " + report.summary().replace("\n", "\n  "))
    print(f"  every in-window fault accounted for: {report.fully_attributed()}")
    flapping = intermittency_injected_split(dataset, scenario, spec.config)
    failover = table7_failover_split(dataset, scenario, spec.config)
    print(f"  §4.2.3 intermittent domains: {flapping.injected_domains} injected "
          f"/ {flapping.organic_domains} organic")
    print(f"  Table 7 stale-ECH domains: {failover.injected_domains} injected "
          f"/ {failover.organic_domains} organic")


def main() -> None:
    flags = {"--continuous", "--chaos"}
    argv = [a for a in sys.argv[1:] if a not in flags]
    with_continuous = "--continuous" in sys.argv[1:]
    with_chaos = "--chaos" in sys.argv[1:]
    population = int(argv[0]) if argv else 1200
    print(f"building a {population}-domain Internet and scanning it "
          "(May 2023 - Mar 2024, monthly samples + the hourly ECH week)...")
    spec = StudySpec(SimConfig(population=population), day_step=28, ech_sample=60)
    workdir = tempfile.mkdtemp(prefix="repro-study-")
    with Study(spec, ExecutionPlan(cache_dir=os.path.join(workdir, "cache"))) as study:
        dataset = study.run()
    print(f"done: {len(dataset.days())} scan days, "
          f"{dataset.run_stats.dns_queries} DNS queries, "
          f"{len(dataset.ech_observations)} hourly ECH sightings\n")

    summary = adoption.summarize(dataset)
    print(render_comparison(
        "Adoption (Figure 2)",
        [
            ("rate band", "20-27%", f"{summary.dynamic_apex_start:.1f}-{summary.dynamic_apex_end:.1f}%"),
            ("dynamic trend", "rising", "rising" if summary.dynamic_rising else "flat"),
        ],
    ))
    series = adoption.dynamic_adoption(dataset)["apex"]
    print()
    print(render_series("dynamic apex adoption %", series.points))

    stats = nameservers.table2_ns_shares(dataset)
    print()
    print(render_comparison(
        "Name servers (Table 2)",
        [("full-Cloudflare share", "99.89%", f"{stats.full_mean_pct:.2f}% (non-CF cohort oversampled x{spec.config.noncf_boost:.0f})")],
    ))

    table4 = parameters.table4_default_vs_custom(dataset)
    print()
    print(render_comparison(
        "Cloudflare config (Table 4)",
        [("default share", "~80%", f"{table4.default_pct:.1f}%")],
    ))

    event = ech_analysis.detect_disable_event(dataset)
    rotation = ech_analysis.fig4_rotation(dataset)
    print()
    print(render_comparison(
        "ECH (Figures 4, 13)",
        [
            ("share before Oct 5", "~70%", f"{event.pre_disable_mean_pct:.1f}%"),
            ("share after Oct 5", "0%", f"{event.post_disable_max_pct:.1f}%"),
            ("key rotation", "1.26 h", f"{rotation.overall_mean_hours:.2f} h"),
            ("client-facing server", "cloudflare-ech.com", ", ".join(rotation.public_names)),
        ],
    ))

    rows = dnssec_analysis.table9_validation(dataset)
    print()
    print(render_table(
        "DNSSEC validation (Table 9)",
        ["category", "signed", "secure %", "insecure %"],
        [(r.category, r.signed, f"{r.secure_pct:.1f}", f"{r.insecure_pct:.1f}") for r in rows],
        note="paper: with-HTTPS domains are insecure ~49% vs ~24% without",
    ))

    if with_continuous:
        continuous_walkthrough(spec, dataset, workdir)

    if with_chaos:
        chaos_walkthrough(workdir)


if __name__ == "__main__":
    main()
