#!/usr/bin/env python
"""Run a miniature version of the paper's server-side study (§4).

Builds a small simulated Internet, runs the daily scan campaign over the
full May 2023 – Mar 2024 window (sampled monthly so this finishes in
seconds), and prints the headline analyses: adoption (Fig 2), name
servers (Table 2), default-vs-custom configs (Table 4), the ECH disable
event (Fig 13), key-rotation cadence (Fig 4), and DNSSEC (Table 9).

Run:  python examples/measurement_study.py [population]

Pass ``--continuous`` to also walk through the paper's "longstanding
framework" mode: the same campaign collected as arriving day-slice ×
domain-shard increments against an on-disk checkpoint, interrupted
mid-collection and resumed, with the folded longitudinal dataset
checked value-equal to the one-shot run above.
"""

import sys
import tempfile

from repro.analysis import adoption, dnssec_analysis, ech_analysis, nameservers, parameters
from repro.reporting import render_comparison, render_series, render_table
from repro.scanner import CollectionInterrupted, ContinuousCollector, run_campaign
from repro.simnet import SimConfig, World


def continuous_walkthrough(config: SimConfig, one_shot) -> None:
    """Collect the same campaign incrementally: increments arrive, the
    collection is "killed" partway, a fresh collector resumes from the
    checkpoint, and the folded result equals the one-shot dataset."""
    checkpoint = tempfile.mkdtemp(prefix="repro-checkpoint-")
    print("\ncontinuous collection walkthrough")
    print(f"  checkpoint: {checkpoint}")

    def collector() -> ContinuousCollector:
        # Two domain shards, three scan days per arriving day-slice; the
        # same arguments must be passed on every resume (the checkpoint
        # rejects a different world, shard count, or partitioning).
        return ContinuousCollector(
            config, checkpoint, workers=2, days_per_increment=3,
            day_step=28, ech_sample=60, executor="thread",
        )

    try:
        collector().collect(
            progress=lambda msg: print(f"  {msg}"), max_increments=3
        )
    except CollectionInterrupted as exc:
        print(f"  simulated crash: {exc}")
    longitudinal = collector().collect(progress=lambda msg: print(f"  {msg}"))
    print(f"  resumed and finished: {len(longitudinal.days())} scan days, "
          f"stats {longitudinal.run_stats.summary()}")
    print(f"  value-equal to the one-shot campaign: {longitudinal == one_shot}")


def main() -> None:
    argv = [a for a in sys.argv[1:] if a != "--continuous"]
    with_continuous = "--continuous" in sys.argv[1:]
    population = int(argv[0]) if argv else 1200
    print(f"building a {population}-domain Internet and scanning it "
          "(May 2023 - Mar 2024, monthly samples + the hourly ECH week)...")
    config = SimConfig(population=population)
    world = World(config)
    dataset = run_campaign(world, day_step=28, ech_sample=60)
    print(f"done: {len(dataset.days())} scan days, "
          f"{world.network.dns_query_count} DNS queries, "
          f"{len(dataset.ech_observations)} hourly ECH sightings\n")

    summary = adoption.summarize(dataset)
    print(render_comparison(
        "Adoption (Figure 2)",
        [
            ("rate band", "20-27%", f"{summary.dynamic_apex_start:.1f}-{summary.dynamic_apex_end:.1f}%"),
            ("dynamic trend", "rising", "rising" if summary.dynamic_rising else "flat"),
        ],
    ))
    series = adoption.dynamic_adoption(dataset)["apex"]
    print()
    print(render_series("dynamic apex adoption %", series.points))

    stats = nameservers.table2_ns_shares(dataset)
    print()
    print(render_comparison(
        "Name servers (Table 2)",
        [("full-Cloudflare share", "99.89%", f"{stats.full_mean_pct:.2f}% (non-CF cohort oversampled x{config.noncf_boost:.0f})")],
    ))

    table4 = parameters.table4_default_vs_custom(dataset)
    print()
    print(render_comparison(
        "Cloudflare config (Table 4)",
        [("default share", "~80%", f"{table4.default_pct:.1f}%")],
    ))

    event = ech_analysis.detect_disable_event(dataset)
    rotation = ech_analysis.fig4_rotation(dataset)
    print()
    print(render_comparison(
        "ECH (Figures 4, 13)",
        [
            ("share before Oct 5", "~70%", f"{event.pre_disable_mean_pct:.1f}%"),
            ("share after Oct 5", "0%", f"{event.post_disable_max_pct:.1f}%"),
            ("key rotation", "1.26 h", f"{rotation.overall_mean_hours:.2f} h"),
            ("client-facing server", "cloudflare-ech.com", ", ".join(rotation.public_names)),
        ],
    ))

    rows = dnssec_analysis.table9_validation(dataset)
    print()
    print(render_table(
        "DNSSEC validation (Table 9)",
        ["category", "signed", "secure %", "insecure %"],
        [(r.category, r.signed, f"{r.secure_pct:.1f}", f"{r.insecure_pct:.1f}") for r in rows],
        note="paper: with-HTTPS domains are insecure ~49% vs ~24% without",
    ))

    if with_continuous:
        continuous_walkthrough(config, dataset)


if __name__ == "__main__":
    main()
