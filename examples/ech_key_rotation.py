#!/usr/bin/env python
"""ECH key rotation and DNS caching: why §4.4.2 matters.

Simulates the hourly scans the paper ran Jul 21-27 2023 against
Cloudflare's client-facing server, measures the rotation cadence, and
then demonstrates the operational hazard: a client holding a DNS-cached
ECHConfig meets a server that has already rotated past the retained key
window, and only the retry mechanism saves the connection.

Run:  python examples/ech_key_rotation.py
"""

from collections import Counter

from repro.ech import ECHKeyManager, HpkeError, open_, seal
from repro.reporting import render_histogram


def measure_rotation() -> None:
    print("== Hourly scans of the published ECHConfig (1 week) ==")
    km = ECHKeyManager("cloudflare-ech.com", rotation_hours=1.26)
    runs = km.observed_durations(0, 7 * 24)
    lengths = Counter(length for _gen, length in runs)
    print(render_histogram(
        "configs by consecutive hourly sightings (paper Fig 4: mean 1.26h)",
        [(f"{hours} hour(s)", count) for hours, count in sorted(lengths.items())],
    ))
    mean = sum(length for _g, length in runs) / len(runs)
    print(f"  distinct configs: {len(runs)}   mean observed duration: {mean:.2f} h")


def demonstrate_cache_hazard() -> None:
    print("\n== The DNS-cache hazard and the retry flow ==")
    km = ECHKeyManager("cloudflare-ech.com", rotation_hours=1.26, retain_generations=1)

    cached_hour, now_hour = 0, 6  # the client's resolver cached 6 hours ago
    cached_config = km.published_config_list(cached_hour).primary()
    print(f"client holds config id {cached_config.config_id} "
          f"(generation {km.generation_for_hour(cached_hour)}), "
          f"server is at generation {km.generation_for_hour(now_hour)}")

    sealed = seal(cached_config.public_key, b"tls ech draft-13", b"aad", b"secret.example")
    for keypair in km.active_keypairs(now_hour):
        try:
            open_(keypair, b"tls ech draft-13", b"aad", sealed)
            print("  (unexpected: stale key still accepted)")
            break
        except HpkeError:
            pass
    else:
        print("  server cannot decrypt the ClientHelloInner -> ECH rejected")

    retry = km.retry_config_list(now_hour).primary()
    print(f"  server answers with retry_configs (config id {retry.config_id})")
    sealed = seal(retry.public_key, b"tls ech draft-13", b"aad", b"secret.example")
    plaintext = open_(km.active_keypairs(now_hour)[-1], b"tls ech draft-13", b"aad", sealed)
    print(f"  client retries and the server decrypts: inner SNI = {plaintext.decode()!r}")
    print("  => without client retry support, this connection would have failed"
          " (the paper finds all three ECH browsers implement it)")


def main() -> None:
    measure_rotation()
    demonstrate_cache_hazard()


if __name__ == "__main__":
    main()
