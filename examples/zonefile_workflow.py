#!/usr/bin/env python
"""Operate like a DNS admin: author a zone file, serve it, break it, fix it.

Walks the full operator workflow for HTTPS records the paper's
discussion (§7) argues needs automation: write a BIND-style zone file
with an HTTPS record + ECH, load and serve it, watch a stale ECH key
break clients that lack retry, and re-publish a corrected zone.

Run:  python examples/zonefile_workflow.py
"""

import base64

from repro.browser import Testbed, TEST_DOMAIN
from repro.dnscore import Name, rdtypes
from repro.ech import ECHConfigList, ECHKeyManager
from repro.zones import parse_zone_file, serialize_zone

ZONE_TEMPLATE = """
$ORIGIN {origin}
$TTL 60
@   IN SOA ns1.{origin} hostmaster.{origin} ( 2024030101 7200 3600 1209600 300 )
@   IN NS   ns1.{origin}
ns1 IN A    52.20.30.40
@   IN A    2.2.2.2
cover IN A  2.2.2.2
@   IN HTTPS 1 . alpn=h2 ech={ech_b64}
www IN CNAME {origin}
"""


def main() -> None:
    km = ECHKeyManager(f"cover.{TEST_DOMAIN}", seed=b"testbed")
    stale_wire = km.published_wire(0)

    print("== 1. Author the zone file (with an ECH config that will go stale) ==")
    text = ZONE_TEMPLATE.format(
        origin=TEST_DOMAIN + ".", ech_b64=base64.b64encode(stale_wire).decode()
    )
    zone = parse_zone_file(text)
    print(f"parsed {len(zone.rrsets())} RRsets; apex = {zone.apex}")
    https = zone.get_rrset(zone.apex, rdtypes.HTTPS)
    print("HTTPS record:", https[0].to_text()[:80], "...")

    print("\n== 2. Serve it from the testbed's authoritative server ==")
    testbed = Testbed()
    testbed.auth_server.tree = type(testbed.auth_server.tree)()
    testbed.auth_server.tree.add_zone(zone)
    testbed.new_round()
    testbed.clear_endpoints()
    # The web server has rotated far past the published key — and this
    # operator disabled the retry mechanism (discouraged by the spec).
    testbed.install_web_server(
        ip="2.2.2.2",
        cert_names=(TEST_DOMAIN, f"cover.{TEST_DOMAIN}"),
        ech_keypairs=[km.keypair_for_generation(9)],
        ech_retry_wire=None,
        retry_enabled=False,
    )
    result = testbed.browser("Chrome").navigate(f"https://{TEST_DOMAIN}")
    print(f"Chrome with stale ECH + no retry: success={result.success}, "
          f"ech_accepted={result.ech_accepted}")
    print("  (the outer handshake authenticates the cover name, so the client "
          "falls back to plain TLS — but the SNI leaked)")

    print("\n== 3. Fix: publish the current key and enable retry ==")
    fresh_wire = ECHConfigList([km.config_for_generation(9)]).to_wire()
    zone.remove_rrset(zone.apex, rdtypes.HTTPS)
    zone.add_record(
        TEST_DOMAIN + ".", "HTTPS",
        f"1 . alpn=h2 ech={base64.b64encode(fresh_wire).decode()}",
    )
    testbed.network.unregister_tcp("2.2.2.2", 443)
    testbed.install_web_server(
        ip="2.2.2.2",
        cert_names=(TEST_DOMAIN, f"cover.{TEST_DOMAIN}"),
        ech_keypairs=[km.keypair_for_generation(9)],
        ech_retry_wire=fresh_wire,
    )
    testbed.new_round()
    result = testbed.browser("Chrome").navigate(f"https://{TEST_DOMAIN}")
    print(f"after fix: success={result.success}, ech_accepted={result.ech_accepted}")

    print("\n== 4. Round-trip the zone back to a file ==")
    print(serialize_zone(zone)[:400] + "  ...")


if __name__ == "__main__":
    main()
