"""Legacy setup shim.

The project is fully described by pyproject.toml; this file exists so
`pip install -e . --no-build-isolation` works on environments without
the `wheel` package (PEP 660 fallback to `setup.py develop`).
"""

from setuptools import setup

setup()
